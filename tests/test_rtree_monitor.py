"""Tests for the R-tree-backed ablation monitor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_objects
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.core.rtree_monitor import RTreeMonitor
from repro.window import CountWindow


class TestRTreeMonitor:
    def test_empty(self):
        m = RTreeMonitor(10, 10, CountWindow(5))
        assert m.update([]).is_empty
        assert m.tree_size == 0

    def test_single(self):
        m = RTreeMonitor(10, 10, CountWindow(5))
        result = m.update([SpatialObject(x=5, y=5, weight=3.0)])
        assert result.best_weight == 3.0
        assert m.tree_size == 1

    def test_matches_naive_over_stream(self):
        rt = RTreeMonitor(10, 10, CountWindow(30))
        naive = NaiveMonitor(10, 10, CountWindow(30))
        for i in range(12):
            batch = make_objects(6, seed=400 + i, domain=70.0)
            a = rt.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight), f"batch {i}"
            rt.check_invariants()

    def test_expiry_shrinks_tree(self):
        m = RTreeMonitor(10, 10, CountWindow(5))
        m.update(make_objects(5, seed=1))
        m.update(make_objects(5, seed=2))
        assert m.tree_size == 5
        assert len(m.window) == 5

    def test_expired_best_recovers(self):
        m = RTreeMonitor(10, 10, CountWindow(2))
        m.update([SpatialObject(x=5, y=5, weight=9), SpatialObject(x=6, y=6, weight=9)])
        assert m.result.best_weight == 18.0
        result = m.update(
            [SpatialObject(x=80, y=80, weight=1), SpatialObject(x=81, y=81, weight=1)]
        )
        assert result.best_weight == 2.0

    def test_heap_handles_superseded_entries(self):
        """A vertex whose space grows leaves a stale heap entry that
        must be skipped, not reported."""
        m = RTreeMonitor(10, 10, CountWindow(10))
        a = SpatialObject(x=5, y=5, weight=1.0)
        m.update([a])
        m.update([SpatialObject(x=6, y=6, weight=1.0)])
        m.update([SpatialObject(x=7, y=7, weight=1.0)])
        assert m.result.best_weight == pytest.approx(3.0)
        assert m.result.best.anchor_oid == a.oid


coord = st.integers(min_value=0, max_value=45).map(float)


@settings(max_examples=40, deadline=None)
@given(
    objs=st.lists(
        st.builds(
            SpatialObject,
            x=coord,
            y=coord,
            weight=st.sampled_from([0.5, 1.0, 2.0]),
        ),
        min_size=0,
        max_size=50,
    ),
    capacity=st.integers(min_value=1, max_value=25),
)
def test_rtree_monitor_equals_naive_property(objs, capacity):
    rt = RTreeMonitor(8, 8, CountWindow(capacity))
    naive = NaiveMonitor(8, 8, CountWindow(capacity))
    for pos in range(0, len(objs), 5):
        batch = objs[pos : pos + 5]
        a = rt.update(batch)
        b = naive.update(batch)
        assert a.best_weight == pytest.approx(b.best_weight)
    rt.check_invariants()
