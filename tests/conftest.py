"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.objects import SpatialObject, WeightedRect


def make_objects(
    count: int,
    seed: int = 0,
    domain: float = 100.0,
    weight_max: float = 10.0,
    start_t: float = 0.0,
) -> list[SpatialObject]:
    """Deterministic batch of random objects with increasing timestamps."""
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, domain),
            y=rng.uniform(0.0, domain),
            weight=rng.uniform(0.0, weight_max) if weight_max else 1.0,
            timestamp=start_t + i,
        )
        for i in range(count)
    ]


def make_rects(
    count: int,
    seed: int = 0,
    domain: float = 100.0,
    side: float = 20.0,
    weight_max: float = 10.0,
) -> list[WeightedRect]:
    """Deterministic dual rectangles (side × side) for solver tests."""
    return [
        WeightedRect.from_object(o, side, side)
        for o in make_objects(count, seed=seed, domain=domain, weight_max=weight_max)
    ]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
