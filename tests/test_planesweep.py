"""Unit tests for the plane-sweep solvers on hand-constructed inputs."""

from __future__ import annotations

import pytest

from repro.core.bruteforce import cover_weight
from repro.core.geometry import Rect
from repro.core.objects import SpatialObject, WeightedRect
from repro.core.planesweep import (
    local_plane_sweep,
    plane_sweep_max,
    plane_sweep_topk,
    sweep_items_max,
)
from repro.errors import InvalidParameterError


def wr(x1, y1, x2, y2, w=1.0, oid=None) -> WeightedRect:
    cx, cy = (x1 + x2) / 2, (y1 + y2) / 2
    kwargs = {} if oid is None else {"oid": oid}
    obj = SpatialObject(x=cx, y=cy, weight=w, **kwargs)
    return WeightedRect(rect=Rect(x1, y1, x2, y2), weight=w, obj=obj)


class TestPlaneSweepMax:
    def test_empty_input(self):
        assert plane_sweep_max([]) is None

    def test_all_degenerate(self):
        assert plane_sweep_max([wr(0, 0, 0, 5), wr(1, 1, 4, 1)]) is None

    def test_single_rect(self):
        region = plane_sweep_max([wr(0, 0, 4, 2, w=3.0)])
        assert region is not None
        assert region.weight == 3.0
        assert region.rect == Rect(0, 0, 4, 2)

    def test_two_overlapping(self):
        rects = [wr(0, 0, 4, 4, w=1.0), wr(2, 2, 6, 6, w=2.0)]
        region = plane_sweep_max(rects)
        assert region.weight == 3.0
        # the reported cell lies inside the true intersection [2,4]²
        assert Rect(2, 2, 4, 4).contains_rect(region.rect)

    def test_two_disjoint_picks_heavier(self):
        rects = [wr(0, 0, 1, 1, w=1.0), wr(5, 5, 6, 6, w=4.0)]
        region = plane_sweep_max(rects)
        assert region.weight == 4.0
        assert Rect(5, 5, 6, 6).contains_rect(region.rect)

    def test_edge_touching_do_not_stack(self):
        rects = [wr(0, 0, 2, 2), wr(2, 0, 4, 2)]
        assert plane_sweep_max(rects).weight == 1.0

    def test_three_way_overlap(self):
        rects = [
            wr(0, 0, 10, 10, w=1.0),
            wr(5, 5, 15, 15, w=1.0),
            wr(8, 0, 18, 10, w=1.0),
        ]
        region = plane_sweep_max(rects)
        assert region.weight == 3.0
        # triple intersection is [8,10] x [5,10]
        assert Rect(8, 5, 10, 10).contains_rect(region.rect)

    def test_chain_overlap_max_is_pairwise(self):
        # A∩B and B∩C but no triple: max weight is 2
        rects = [wr(0, 0, 4, 2), wr(3, 0, 7, 2), wr(6, 0, 10, 2)]
        assert plane_sweep_max(rects).weight == 2.0

    def test_weights_used_not_counts(self):
        # one heavy singleton beats a light pair
        rects = [wr(0, 0, 2, 2, w=0.4), wr(1, 1, 3, 3, w=0.4), wr(9, 9, 10, 10, w=1.0)]
        assert plane_sweep_max(rects).weight == 1.0

    def test_reported_weight_matches_cover_at_center(self):
        rects = [
            wr(0, 0, 6, 6, w=2.0),
            wr(3, 1, 9, 7, w=1.5),
            wr(2, 4, 8, 10, w=0.5),
        ]
        region = plane_sweep_max(rects)
        x, y = region.best_point
        assert cover_weight(rects, x, y) == pytest.approx(region.weight)

    def test_zero_weight_objects(self):
        rects = [wr(0, 0, 2, 2, w=0.0), wr(1, 1, 3, 3, w=0.0)]
        region = plane_sweep_max(rects)
        assert region is not None
        assert region.weight == 0.0

    def test_identical_rects_stack(self):
        rects = [wr(0, 0, 2, 2, w=1.0) for _ in range(5)]
        assert plane_sweep_max(rects).weight == 5.0

    def test_sweep_items_degenerate_mixed(self):
        items = [(Rect(0, 0, 2, 2), 1.0), (Rect(1, 1, 1, 5), 9.0)]
        weight, rect = sweep_items_max(items)
        assert weight == 1.0


class TestLocalPlaneSweep:
    def test_no_neighbors_returns_anchor(self):
        anchor = wr(0, 0, 4, 4, w=2.5, oid=77)
        region = local_plane_sweep(anchor, [])
        assert region.weight == 2.5
        assert region.rect == anchor.rect
        assert region.anchor_oid == 77

    def test_space_clipped_to_anchor(self):
        anchor = wr(0, 0, 4, 4, w=1.0)
        # two neighbours overlapping each other mostly OUTSIDE the anchor
        n1 = wr(3, 3, 10, 10, w=5.0)
        n2 = wr(3.5, 3.5, 11, 11, w=5.0)
        region = local_plane_sweep(anchor, [n1, n2])
        # best space on the anchor is the triple corner [3.5,4]²
        assert region.weight == 11.0
        assert anchor.rect.contains_rect(region.rect)

    def test_non_overlapping_neighbor_ignored(self):
        anchor = wr(0, 0, 2, 2, w=1.0)
        region = local_plane_sweep(anchor, [wr(10, 10, 12, 12, w=9.0)])
        assert region.weight == 1.0

    def test_anchor_weight_always_included(self):
        anchor = wr(0, 0, 4, 4, w=3.0)
        region = local_plane_sweep(anchor, [wr(2, 2, 6, 6, w=1.0)])
        assert region.weight == 4.0

    def test_touching_neighbor_does_not_count(self):
        anchor = wr(0, 0, 2, 2, w=1.0)
        region = local_plane_sweep(anchor, [wr(2, 0, 4, 2, w=9.0)])
        assert region.weight == 1.0


class TestPlaneSweepTopK:
    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            plane_sweep_topk([wr(0, 0, 1, 1)], 0)

    def test_empty(self):
        assert plane_sweep_topk([], 3) == []

    def test_top1_equals_max(self):
        rects = [
            wr(0, 0, 6, 6, w=2.0),
            wr(3, 1, 9, 7, w=1.5),
            wr(2, 4, 8, 10, w=0.5),
            wr(20, 20, 26, 26, w=3.0),
        ]
        top = plane_sweep_topk(rects, 1)
        assert len(top) == 1
        assert top[0].weight == pytest.approx(plane_sweep_max(rects).weight)

    def test_ranking_descends(self):
        rects = [wr(i * 10, 0, i * 10 + 4, 4, w=float(i)) for i in range(1, 6)]
        top = plane_sweep_topk(rects, 3)
        assert [r.weight for r in top] == [5.0, 4.0, 3.0]

    def test_k_larger_than_candidates(self):
        rects = [wr(0, 0, 2, 2), wr(10, 10, 12, 12)]
        top = plane_sweep_topk(rects, 10)
        assert 1 <= len(top) <= 10
        assert top[0].weight == 1.0

    def test_candidate_weights_are_achievable(self):
        rects = [
            wr(0, 0, 5, 5, w=1.0),
            wr(3, 3, 8, 8, w=2.0),
            wr(4, 0, 9, 5, w=1.5),
            wr(1, 4, 6, 9, w=0.5),
        ]
        for region in plane_sweep_topk(rects, 4):
            x, y = region.best_point
            assert cover_weight(rects, x, y) == pytest.approx(region.weight)
