"""Tests for serving multiple continuous queries over one stream."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.topk import TopKAG2Monitor
from repro.engine import MultiQueryGroup
from repro.errors import InvalidParameterError
from repro.overload import AdaptiveMonitor, BackpressureQueue
from repro.window import CountWindow


def group_with(*names_and_monitors):
    group = MultiQueryGroup()
    for name, monitor in names_and_monitors:
        group.add(name, monitor)
    return group


class TestRegistry:
    def test_add_and_names(self):
        group = group_with(("a", AG2Monitor(5, 5, CountWindow(10))))
        assert "a" in group
        assert group.names == ("a",)
        assert len(group) == 1

    def test_duplicate_name_rejected(self):
        group = group_with(("a", AG2Monitor(5, 5, CountWindow(10))))
        with pytest.raises(InvalidParameterError):
            group.add("a", AG2Monitor(5, 5, CountWindow(10)))

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiQueryGroup().add("", AG2Monitor(5, 5, CountWindow(10)))

    def test_remove(self):
        monitor = AG2Monitor(5, 5, CountWindow(10))
        group = group_with(("a", monitor))
        assert group.remove("a") is monitor
        assert "a" not in group
        with pytest.raises(InvalidParameterError):
            group.remove("a")

    def test_monitor_lookup(self):
        monitor = AG2Monitor(5, 5, CountWindow(10))
        group = group_with(("a", monitor))
        assert group.monitor("a") is monitor
        with pytest.raises(InvalidParameterError):
            group.monitor("b")


class TestServing:
    def test_update_requires_queries(self):
        with pytest.raises(InvalidParameterError):
            MultiQueryGroup().update(make_objects(1))

    def test_all_queries_see_every_batch(self):
        group = group_with(
            ("exact", AG2Monitor(10, 10, CountWindow(40))),
            ("naive", NaiveMonitor(10, 10, CountWindow(40))),
        )
        for i in range(6):
            results = group.update(make_objects(8, seed=i, domain=60.0))
            assert results["exact"].best_weight == pytest.approx(
                results["naive"].best_weight
            )

    def test_different_rect_sizes_coexist(self):
        group = group_with(
            ("fine", AG2Monitor(4, 4, CountWindow(30))),
            ("coarse", AG2Monitor(40, 40, CountWindow(30))),
        )
        results = group.update(make_objects(20, seed=4, domain=50.0))
        # a larger rectangle can never cover less weight at the optimum
        assert results["coarse"].best_weight >= results["fine"].best_weight

    def test_mixed_query_types(self):
        group = group_with(
            ("top1", AG2Monitor(10, 10, CountWindow(30))),
            ("top3", TopKAG2Monitor(10, 10, CountWindow(30), k=3)),
        )
        results = group.update(make_objects(15, seed=6, domain=50.0))
        assert results["top3"].best_weight == pytest.approx(
            results["top1"].best_weight
        )
        assert len(results["top3"].regions) <= 3

    def test_results_without_update(self):
        group = group_with(("a", AG2Monitor(10, 10, CountWindow(10))))
        group.update(make_objects(5, seed=1))
        latest = group.results()
        assert latest["a"].window_size == 5


class TestBackfill:
    def test_backfilled_query_answers_over_history(self):
        group = group_with(("first", AG2Monitor(10, 10, CountWindow(50))))
        history = make_objects(30, seed=3, domain=60.0)
        group.update(history)
        group.add_backfilled(
            "second", AG2Monitor(10, 10, CountWindow(50)), source="first"
        )
        fresh = make_objects(5, seed=9, domain=60.0)
        results = group.update(fresh)
        assert results["second"].best_weight == pytest.approx(
            results["first"].best_weight
        )

    def test_backfill_unknown_source(self):
        group = MultiQueryGroup()
        with pytest.raises(InvalidParameterError):
            group.add_backfilled(
                "x", AG2Monitor(5, 5, CountWindow(5)), source="nope"
            )


class TestBackpressureServing:
    def test_offer_requires_queue(self):
        group = MultiQueryGroup()
        group.add("q", AG2Monitor(10, 10, CountWindow(50)))
        with pytest.raises(InvalidParameterError, match="backpressure"):
            group.offer(make_objects(5))
        with pytest.raises(InvalidParameterError, match="backpressure"):
            group.overload_stats()

    def test_offer_serves_coalesced_batches(self):
        queue = BackpressureQueue(20, max_batch=10)
        group = MultiQueryGroup(backpressure=queue)
        group.add("a", AG2Monitor(10, 10, CountWindow(50)))
        group.add("b", NaiveMonitor(10, 10, CountWindow(50)))
        results = group.offer(make_objects(15, domain=60.0))
        assert set(results) == {"a", "b"}
        assert queue.pending == 5  # coalescing bound held back the rest
        assert group.offer([]) is not None  # drains the backlog
        assert queue.pending == 0
        assert group.offer([]) is None  # nothing pending, nothing served
        stats = group.overload_stats()
        assert stats["ledger_closed"]
        assert stats["ledger"]["processed"] == 15

    def test_shedding_keeps_the_group_bounded(self):
        queue = BackpressureQueue(8, max_batch=8, policy="shed_oldest")
        group = MultiQueryGroup(backpressure=queue)
        group.add("q", NaiveMonitor(10, 10, CountWindow(50)))
        group.offer(make_objects(30, domain=60.0))
        stats = group.overload_stats()
        assert stats["shed"] > 0
        assert stats["queue_high_water"] <= 8
        assert stats["ledger_closed"]

    def test_adaptive_query_reports_its_ladder(self):
        queue = BackpressureQueue(50)
        group = MultiQueryGroup(backpressure=queue)
        group.add(
            "ladder",
            AdaptiveMonitor(
                10.0, 10.0, lambda: CountWindow(50), budget_ms=10_000.0
            ),
        )
        group.add("plain", NaiveMonitor(10, 10, CountWindow(50)))
        group.offer(make_objects(12, domain=60.0))
        stats = group.overload_stats()
        assert set(stats["monitors"]) == {"ladder"}  # plain has no ladder
        assert stats["monitors"]["ladder"]["mode"] == "exact"
        assert stats["monitors"]["ladder"]["guarantee"] == 1.0
