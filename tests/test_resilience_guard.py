"""Ingest boundary tests: policies, dead-letter queue, reorder buffer.

The guard's contract: whatever garbage arrives, what comes out is a
sequence of valid objects in non-decreasing timestamp order, and every
record that went in is accounted for (admitted, rejected, or pending).
"""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.objects import SpatialObject
from repro.engine import MultiQueryGroup, StreamEngine
from repro.errors import InvalidParameterError, QuarantineError
from repro.obs import Metrics
from repro.resilience import (
    DeadLetterQueue,
    ErrorPolicy,
    IngestGuard,
    ReorderBuffer,
    coerce_record,
)
from repro.window import CountWindow, TimeWindow


def obj(ts: float, x: float = 5.0, w: float = 1.0) -> SpatialObject:
    return SpatialObject(x=x, y=5.0, weight=w, timestamp=ts)


class TestErrorPolicy:
    def test_parse_strings(self):
        assert ErrorPolicy.parse("quarantine") is ErrorPolicy.QUARANTINE
        assert ErrorPolicy.parse("RAISE") is ErrorPolicy.RAISE
        assert ErrorPolicy.parse(ErrorPolicy.SKIP) is ErrorPolicy.SKIP

    def test_parse_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            ErrorPolicy.parse("explode")


class TestCoerceRecord:
    def test_passthrough_valid_object(self):
        o = obj(1.0)
        assert coerce_record(o) is o

    def test_mapping_and_sequence_payloads(self):
        from_map = coerce_record({"x": 1, "y": 2, "weight": 3, "timestamp": 4})
        assert (from_map.x, from_map.y) == (1.0, 2.0)
        from_seq = coerce_record((1, 2, 3, 4))
        assert from_seq.weight == 3.0 and from_seq.timestamp == 4.0

    @pytest.mark.parametrize(
        "payload",
        [
            {"x": float("nan"), "y": 0.0},
            {"x": 0.0, "y": 0.0, "weight": -1.0},
            {"weight": 1.0},  # missing x/y
            (1.0, float("inf")),
            (1.0, 2.0, "garbage"),
            "not a record",
            object(),
        ],
    )
    def test_bad_payloads_raise(self, payload):
        with pytest.raises((InvalidParameterError, ValueError, TypeError)):
            coerce_record(payload)


class TestDeadLetterQueue:
    def test_bounded_with_eviction_accounting(self):
        from repro.resilience import DeadLetter

        q = DeadLetterQueue(capacity=3)
        for i in range(5):
            q.put(DeadLetter(record=i, reason="invalid", detail="", seq=i))
        assert len(q) == 3
        assert q.total_enqueued == 5
        assert q.total_evicted == 2
        # retained entries are the newest ones
        assert [letter.record for letter in q] == [2, 3, 4]
        assert q.counts_by_reason() == {"invalid": 5}

    def test_drain_empties_but_keeps_totals(self):
        from repro.resilience import DeadLetter

        q = DeadLetterQueue(capacity=8)
        q.put(DeadLetter(record="r", reason="late", detail="", seq=1))
        drained = q.drain()
        assert len(drained) == 1 and len(q) == 0
        assert q.total_enqueued == 1

    def test_capacity_validated(self):
        with pytest.raises(InvalidParameterError):
            DeadLetterQueue(capacity=0)


class TestDeadLetterDrainToJsonl:
    def _letters(self, n, reason="invalid"):
        from repro.resilience import DeadLetter

        return [
            DeadLetter(record={"raw": i}, reason=reason, detail="d", seq=i)
            for i in range(n)
        ]

    def test_drain_writes_one_json_line_per_entry(self, tmp_path):
        import json

        q = DeadLetterQueue(capacity=8)
        for letter in self._letters(3):
            q.put(letter)
        path = tmp_path / "dead.jsonl"
        assert q.drain_to_jsonl(path) == 3
        assert len(q) == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        docs = [json.loads(line) for line in lines]
        assert [doc["seq"] for doc in docs] == [0, 1, 2]
        assert all(doc["reason"] == "invalid" for doc in docs)
        assert docs[0]["record"] == {"raw": 0}

    def test_repeated_drains_append_across_incarnations(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        first = DeadLetterQueue(capacity=8)
        for letter in self._letters(2):
            first.put(letter)
        first.drain_to_jsonl(path)
        # a fresh queue (post-restart) appends to the same audit trail
        second = DeadLetterQueue(capacity=8)
        for letter in self._letters(3, reason="late"):
            second.put(letter)
        second.drain_to_jsonl(path)
        assert len(path.read_text().splitlines()) == 5

    def test_empty_queue_touches_nothing(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        assert DeadLetterQueue().drain_to_jsonl(path) == 0
        assert not path.exists()

    def test_unserialisable_record_stored_as_repr(self, tmp_path):
        import json

        from repro.resilience import DeadLetter

        q = DeadLetterQueue(capacity=8)
        q.put(DeadLetter(record=object(), reason="invalid", detail="", seq=0))
        path = tmp_path / "dead.jsonl"
        assert q.drain_to_jsonl(path) == 1
        (doc,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert doc["record"].startswith("<object object")

    def test_disk_failure_is_typed_and_entries_survive(self, tmp_path):
        from repro.errors import DurableWriteError

        q = DeadLetterQueue(capacity=8)
        for letter in self._letters(2):
            q.put(letter)
        # a directory path makes open(..., "a") raise EISDIR
        with pytest.raises(DurableWriteError):
            q.drain_to_jsonl(tmp_path)
        # evidence is only dropped once it is on disk
        assert len(q) == 2

    def test_persisted_counter_in_metrics(self, tmp_path):
        q = DeadLetterQueue(capacity=8, metrics=Metrics("test"))
        for letter in self._letters(4):
            q.put(letter)
        q.drain_to_jsonl(tmp_path / "dead.jsonl")
        assert q.metrics.counter("dead_letters_persisted").value == 4


class TestReorderBuffer:
    def test_in_order_stream_flows_through(self):
        buf = ReorderBuffer(max_lateness=0.0)
        out = []
        for t in range(5):
            out.extend(buf.offer(obj(float(t))))
        assert [o.timestamp for o in out] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert buf.reordered == 0 and buf.pending == 0

    def test_bounded_lateness_resequenced(self):
        buf = ReorderBuffer(max_lateness=5.0)
        emitted = []
        for t in [1.0, 2.0, 4.0, 3.0, 8.0, 9.0, 10.0]:
            out = buf.offer(obj(t))
            assert out is not None
            emitted.extend(out)
        emitted.extend(buf.flush())
        stamps = [o.timestamp for o in emitted]
        assert stamps == sorted(stamps)
        assert set(stamps) == {1.0, 2.0, 3.0, 4.0, 8.0, 9.0, 10.0}
        assert buf.reordered == 1

    def test_beyond_bound_is_rejected(self):
        buf = ReorderBuffer(max_lateness=1.0)
        buf.offer(obj(10.0))
        assert buf.offer(obj(8.0)) is None  # watermark is 9.0
        assert buf.offer(obj(9.5)) is not None

    def test_emitted_order_feeds_time_window(self):
        """The buffer's output satisfies TimeWindow's order contract."""
        buf = ReorderBuffer(max_lateness=4.0)
        window = TimeWindow(100.0)
        sequence = [1.0, 3.0, 2.0, 5.0, 4.0, 9.0, 7.0, 12.0, 11.0, 15.0]
        for t in sequence:
            released = buf.offer(obj(t))
            if released:
                window.push(released)  # must not raise WindowOrderError
        window.push(buf.flush())
        assert len(window) == len(sequence)

    def test_negative_lateness_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReorderBuffer(max_lateness=-1.0)

    def test_equal_timestamps_released_once_in_arrival_order(self):
        """Ties share one timestamp but must come out exactly once
        each, in the order they went in (x marks arrival order)."""
        buf = ReorderBuffer(max_lateness=2.0)
        emitted = []
        for i in range(3):
            emitted.extend(buf.offer(obj(5.0, x=float(i))))
        assert emitted == []  # watermark 3.0 — all three held back
        assert buf.pending == 3
        # advancing the watermark past 5.0 releases the whole tie group
        emitted.extend(buf.offer(obj(8.0, x=99.0)))
        assert [(o.timestamp, o.x) for o in emitted] == [
            (5.0, 0.0),
            (5.0, 1.0),
            (5.0, 2.0),
        ]
        assert buf.pending == 1  # only the watermark-advancing record
        assert [(o.timestamp, o.x) for o in buf.flush()] == [(8.0, 99.0)]

    def test_ties_straddling_watermark_boundary(self):
        """A tie group arriving exactly at the watermark: members on
        both sides of the boundary are each released exactly once."""
        buf = ReorderBuffer(max_lateness=2.0)
        assert buf.offer(obj(10.0, x=0.0)) is not None  # watermark -> 8.0
        # timestamp == watermark is on time (strict < classifies late)
        first = buf.offer(obj(8.0, x=1.0))
        assert [o.x for o in first] == [1.0]
        # a second identical stamp after its twin was already released
        # must come out again (once), not be deduplicated or dropped
        second = buf.offer(obj(8.0, x=2.0))
        assert [o.x for o in second] == [2.0]
        # below the watermark the tie rule no longer applies: too late
        assert buf.offer(obj(7.9, x=3.0)) is None
        leftovers = buf.flush()
        assert [o.x for o in leftovers] == [0.0]
        total = first + second + leftovers
        assert sorted(o.x for o in total) == [0.0, 1.0, 2.0]

    def test_tie_group_split_by_late_arrival_keeps_arrival_order(self):
        """Ties buffered across separate offers interleave with an
        intervening smaller timestamp, still in timestamp-then-arrival
        order on release."""
        buf = ReorderBuffer(max_lateness=5.0)
        for ts, x in [(4.0, 0.0), (4.0, 1.0), (3.0, 2.0), (4.0, 3.0)]:
            assert buf.offer(obj(ts, x=x)) == []
        released = buf.flush()
        assert [(o.timestamp, o.x) for o in released] == [
            (3.0, 2.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (4.0, 3.0),
        ]


class TestIngestGuardPolicies:
    def test_quarantine_captures_with_reason(self):
        guard = IngestGuard(policy="quarantine")
        good = guard.filter([obj(1.0), {"x": float("nan"), "y": 0.0}, obj(2.0)])
        assert [o.timestamp for o in good] == [1.0, 2.0]
        assert guard.quarantined == 1
        letters = list(guard.dead_letters)
        assert len(letters) == 1 and letters[0].reason == "invalid"

    def test_skip_drops_silently(self):
        guard = IngestGuard(policy=ErrorPolicy.SKIP)
        good = guard.filter([obj(1.0), "garbage", obj(2.0)])
        assert len(good) == 2
        assert guard.skipped == 1
        assert len(guard.dead_letters) == 0

    def test_raise_policy_fails_fast(self):
        guard = IngestGuard(policy=ErrorPolicy.RAISE)
        with pytest.raises(QuarantineError) as exc_info:
            guard.filter([obj(1.0), {"x": 0.0, "y": 0.0, "weight": -2.0}])
        assert exc_info.value.record == {"x": 0.0, "y": 0.0, "weight": -2.0}

    def test_late_records_deadlettered_as_late(self):
        guard = IngestGuard(policy="quarantine", max_lateness=1.0)
        guard.filter([obj(10.0)])
        guard.filter([obj(5.0)])  # hopelessly late
        assert guard.late_dropped == 1
        assert guard.dead_letters.counts_by_reason() == {"late": 1}

    def test_conservation_law(self):
        guard = IngestGuard(policy="quarantine", max_lateness=3.0)
        records = [obj(1.0), "bad", obj(4.0), obj(3.0), obj(2.0), obj(9.0)]
        guard.filter(records)
        assert guard.offered == len(records)
        assert guard.offered == (
            guard.admitted + guard.rejected + guard.reorder.pending
        )
        guard.flush()
        assert guard.reorder.pending == 0
        assert guard.offered == guard.admitted + guard.rejected

    def test_iterator_mode_flushes_at_end(self):
        source = [obj(1.0), obj(3.0), obj(2.0), "junk", obj(8.0)]
        guard = IngestGuard(iter(source), policy="quarantine", max_lateness=5.0)
        out = list(guard)
        stamps = [o.timestamp for o in out]
        assert stamps == [1.0, 2.0, 3.0, 8.0]
        assert guard.quarantined == 1

    def test_batch_guard_without_source_cannot_iterate(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            list(IngestGuard())

    def test_metrics_counters_emitted(self):
        metrics = Metrics()
        guard = IngestGuard(policy="quarantine", max_lateness=2.0)
        guard.attach_metrics(metrics)
        guard.filter([obj(5.0), "bad", obj(4.0), obj(0.5)])
        snap = metrics.snapshot()
        assert snap.counters["records_quarantined"] == 1
        assert snap.counters["late_reordered"] == 1
        assert snap.counters["late_dropped"] == 1
        assert snap.counters["dead_letters"] == 2  # invalid + late


class TestEngineAndGroupWiring:
    def test_engine_reports_ingest_scope(self):
        objects = make_objects(200, seed=5, domain=60.0)
        records: list[object] = list(objects)
        records.insert(10, {"x": float("nan"), "y": 1.0})
        guard = IngestGuard(iter(records), policy="quarantine")
        metrics = Metrics()
        engine = StreamEngine(
            {"ag2": AG2Monitor(10, 10, CountWindow(50))},
            guard,
            batch_size=20,
            metrics=metrics,
        )
        report = engine.run(10)
        assert "ingest" in report.metrics
        assert report.metrics["ingest"].counters["records_quarantined"] == 1

    def test_multi_query_group_guarded_update(self):
        group = MultiQueryGroup(guard=IngestGuard(policy="quarantine"))
        group.add("a", AG2Monitor(10, 10, CountWindow(30)))
        group.add("b", AG2Monitor(20, 20, CountWindow(30)))
        batch: list[object] = list(make_objects(10, seed=6, domain=50.0))
        batch.append((1.0, 2.0, "garbage"))
        results = group.update_guarded(batch)
        assert set(results) == {"a", "b"}
        assert group.guard.quarantined == 1
        assert all(len(m.window) == 10 for m in map(group.monitor, "ab"))

    def test_group_without_guard_rejects_guarded_update(self):
        group = MultiQueryGroup()
        group.add("a", AG2Monitor(10, 10, CountWindow(30)))
        with pytest.raises(InvalidParameterError):
            group.update_guarded([obj(1.0)])
