"""Tests for replay/CSV stream sources."""

from __future__ import annotations

import pytest

from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.streams import CsvStream, ReplayStream, write_csv


def sample() -> list[SpatialObject]:
    return [
        SpatialObject(x=1.5, y=2.5, weight=3.0, timestamp=0.0),
        SpatialObject(x=4.0, y=5.0, weight=1.0, timestamp=1.0),
        SpatialObject(x=6.0, y=7.0, weight=0.5, timestamp=2.0),
    ]


class TestReplayStream:
    def test_preserves_order(self):
        objs = sample()
        stream = ReplayStream(objs)
        assert [o.oid for o in stream] == [o.oid for o in objs]
        assert len(stream) == 3

    def test_replayable(self):
        stream = ReplayStream(sample())
        first = [o.x for o in stream]
        second = [o.x for o in stream]
        assert first == second


class TestCsvStream:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "stream.csv"
        objs = sample()
        write_csv(path, objs)
        loaded = list(CsvStream(path))
        assert [(o.x, o.y, o.weight, o.timestamp) for o in loaded] == [
            (o.x, o.y, o.weight, o.timestamp) for o in objs
        ]

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            CsvStream(tmp_path / "nope.csv")

    def test_header_and_comments_skipped(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("x,y,weight,timestamp\n# comment\n1,2,3,4\n")
        loaded = list(CsvStream(path))
        assert len(loaded) == 1
        assert loaded[0].weight == 3.0

    def test_headerless_numeric_first_row(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("1,2,3\n4,5,6\n")
        loaded = list(CsvStream(path))
        assert len(loaded) == 2
        # timestamp falls back to line number
        assert loaded[0].timestamp == 1.0

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("1,2\n")
        with pytest.raises(InvalidParameterError):
            list(CsvStream(path))

    def test_malformed_numeric_field_locates_row(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("1,2,3,4\n5,oops,7,8\n")
        with pytest.raises(InvalidParameterError) as exc_info:
            list(CsvStream(path))
        message = str(exc_info.value)
        assert f"{path}:2" in message
        assert "oops" in message

    def test_invalid_object_row_locates_row(self, tmp_path):
        # parses fine as floats, but violates SpatialObject validation
        path = tmp_path / "s.csv"
        path.write_text("1,2,3,4\nnan,6,7,8\n")
        with pytest.raises(InvalidParameterError) as exc_info:
            list(CsvStream(path))
        assert f"{path}:2: invalid object" in str(exc_info.value)

    def test_negative_weight_row_locates_row(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("1,2,3,4\n5,6,-1,8\n")
        with pytest.raises(InvalidParameterError) as exc_info:
            list(CsvStream(path))
        assert f"{path}:2: invalid object" in str(exc_info.value)

    def test_rows_before_bad_one_still_yielded(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("1,2,3,4\n5,6,7,8\nbroken,0,0,0\n")
        stream = CsvStream(path)
        iterator = iter(stream)
        assert next(iterator).x == 1.0
        assert next(iterator).x == 5.0
        with pytest.raises(InvalidParameterError):
            next(iterator)

    def test_replayable(self, tmp_path):
        path = tmp_path / "s.csv"
        write_csv(path, sample())
        stream = CsvStream(path)
        assert len(list(stream)) == len(list(stream)) == 3

    def test_feeds_monitor(self, tmp_path):
        from repro.core.naive import NaiveMonitor
        from repro.window import CountWindow

        path = tmp_path / "s.csv"
        write_csv(
            path,
            [
                SpatialObject(x=10, y=10, weight=2, timestamp=0),
                SpatialObject(x=11, y=11, weight=3, timestamp=1),
            ],
        )
        monitor = NaiveMonitor(5, 5, CountWindow(10))
        result = monitor.update(list(CsvStream(path)))
        assert result.best_weight == 5.0
