"""Checkpoint/recovery tests: atomicity, damage tolerance, equivalence.

The core guarantee under test: *kill at any batch boundary, restore
from the last checkpoint, replay the tail, and the final answer is
bit-identical to an uninterrupted run* — for every snapshotable
monitor kind.  This holds because snapshots capture the alive window
and the indexes are pure functions of the arrival sequence.
"""

from __future__ import annotations

import json

import pytest

from conftest import make_objects
from repro import persist
from repro.core.ag2 import AG2Monitor
from repro.core.g2 import G2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.spaces import region_key
from repro.core.topk import TopKAG2Monitor
from repro.errors import (
    CheckpointChecksumError,
    DiskFullError,
    DurableWriteError,
    ReproError,
    SnapshotError,
)
from repro.obs import Metrics
from repro.resilience import CheckpointManager, MonitorSupervisor
from repro.window import CountWindow

WINDOW = 60
BATCH = 10
TOTAL_BATCHES = 12
KILL_AT = 7  # checkpoint boundary: multiple of EVERY below
EVERY = 7

FACTORIES = {
    "naive": lambda: NaiveMonitor(12, 12, CountWindow(WINDOW)),
    "g2": lambda: G2Monitor(12, 12, CountWindow(WINDOW)),
    "ag2": lambda: AG2Monitor(12, 12, CountWindow(WINDOW)),
    "topk": lambda: TopKAG2Monitor(12, 12, CountWindow(WINDOW), k=3),
}


def stream_batches(count: int = TOTAL_BATCHES):
    return [
        make_objects(BATCH, seed=100 + i, domain=80.0, start_t=i * BATCH)
        for i in range(count)
    ]


def covered_oids(monitor) -> set[int]:
    """Objects whose dual rectangle covers the reported best region."""
    best = monitor.result.best
    if best is None:
        return set()
    cx, cy = best.best_point
    return {
        o.oid
        for o in monitor.window.contents
        if o.to_rect(monitor.rect_width, monitor.rect_height).covers_point(cx, cy)
    }


class TestAtomicPersistence:
    def test_save_json_leaves_no_temp_files(self, tmp_path):
        monitor = FACTORIES["ag2"]()
        monitor.update(make_objects(20, seed=1, domain=80.0))
        target = tmp_path / "snap.json"
        persist.save_json(monitor, target)
        assert target.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_save_json_overwrites_atomically(self, tmp_path):
        monitor = FACTORIES["naive"]()
        target = tmp_path / "snap.json"
        monitor.update(make_objects(5, seed=2, domain=80.0, start_t=0.0))
        persist.save_json(monitor, target)
        monitor.update(make_objects(5, seed=3, domain=80.0, start_t=10.0))
        persist.save_json(monitor, target)
        restored = persist.load_json(target)
        assert len(restored.window) == len(monitor.window)

    def test_truncated_json_raises_snapshot_error(self, tmp_path):
        monitor = FACTORIES["naive"]()
        monitor.update(make_objects(5, seed=4, domain=80.0))
        target = tmp_path / "snap.json"
        persist.save_json(monitor, target)
        target.write_text(target.read_text()[:40])  # torn write
        with pytest.raises(SnapshotError):
            persist.load_json(target)

    def test_not_json_raises_snapshot_error(self, tmp_path):
        target = tmp_path / "snap.json"
        target.write_text("this is not json{{{")
        with pytest.raises(SnapshotError):
            persist.load_json(target)

    def test_missing_fields_raise_repro_error(self):
        with pytest.raises(ReproError):
            persist.restore({"format": 1, "kind": "naive"})  # no window/size

    def test_non_object_snapshot_rejected(self):
        with pytest.raises(SnapshotError):
            persist.restore(["not", "a", "snapshot"])  # type: ignore[arg-type]


class TestCheckpointManager:
    def test_periodic_checkpoints(self, tmp_path):
        monitor = FACTORIES["ag2"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=3)
        for batch in stream_batches(7):
            monitor.update(batch)
            manager.note_batch()
        assert manager.checkpoints_written == 2  # after batches 3 and 6
        restored, index = CheckpointManager.load(path)
        assert index == 6
        assert len(restored.window) == len(monitor.window) or index * BATCH >= WINDOW

    def test_rotation_keeps_history(self, tmp_path):
        monitor = FACTORIES["naive"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=1, keep=2)
        for batch in stream_batches(4):
            monitor.update(batch)
            manager.note_batch()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt.json", "ckpt.json.1", "ckpt.json.2"]
        _, newest = CheckpointManager.load(path)
        _, older = CheckpointManager.load(tmp_path / "ckpt.json.1")
        assert (newest, older) == (4, 3)

    def test_recover_falls_back_through_history(self, tmp_path):
        monitor = FACTORIES["g2"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=1, keep=2)
        for batch in stream_batches(3):
            monitor.update(batch)
            manager.note_batch()
        path.write_text("corrupted!!!")  # current checkpoint damaged
        restored, index = CheckpointManager.recover(path)
        assert index == 2  # newest readable is the rotated predecessor
        assert len(restored.window) == 2 * BATCH

    def test_recover_with_nothing_readable(self, tmp_path):
        with pytest.raises(SnapshotError):
            CheckpointManager.recover(tmp_path / "absent.json")

    def test_unknown_checkpoint_format_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"format": 999, "batch_index": 1}))
        with pytest.raises(SnapshotError):
            CheckpointManager.load(path)

    def test_metrics_counters(self, tmp_path):
        metrics = Metrics()
        monitor = FACTORIES["naive"]()
        manager = CheckpointManager(
            monitor, tmp_path / "c.json", every=2,
            metrics=metrics.scope("checkpoint"),
        )
        for batch in stream_batches(4):
            monitor.update(batch)
            manager.note_batch()
        snap = metrics.snapshot()
        assert snap.counters["checkpoint.checkpoints_written"] == 2
        assert snap.gauges["checkpoint.checkpoint_batch_index"] == 4

    def test_supervisor_is_unwrapped(self, tmp_path):
        supervised = MonitorSupervisor(FACTORIES["ag2"]())
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(supervised, path, every=1)
        supervised.update(stream_batches(1)[0])
        manager.note_batch()
        restored, _ = CheckpointManager.load(path)
        assert isinstance(restored, AG2Monitor)
        assert len(restored.window) == BATCH


class TestCrashRecoveryEquivalence:
    @pytest.mark.parametrize("kind", sorted(FACTORIES))
    def test_kill_restore_replay_equals_uninterrupted(self, kind, tmp_path):
        batches = stream_batches()

        # uninterrupted reference run
        reference = FACTORIES[kind]()
        for batch in batches:
            reference.update(batch)

        # interrupted run: checkpoint every EVERY batches, die at KILL_AT
        victim = FACTORIES[kind]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(victim, path, every=EVERY)
        for batch in batches[:KILL_AT]:
            victim.update(batch)
            manager.note_batch()
        del victim  # crash

        # recovery: load last checkpoint, replay the tail
        recovered, resume_from = CheckpointManager.recover(path)
        assert resume_from == EVERY
        for batch in batches[resume_from:]:
            recovered.update(batch)

        want, got = reference.result, recovered.result
        assert got.best_weight == pytest.approx(want.best_weight)
        assert got.window_size == want.window_size
        assert [region_key(r) for r in got.regions] == [
            region_key(r) for r in want.regions
        ]
        assert covered_oids(recovered) == covered_oids(reference)
        assert [o.oid for o in recovered.window.contents] == [
            o.oid for o in reference.window.contents
        ]

    def test_recovery_counts_in_metrics(self, tmp_path):
        monitor = FACTORIES["ag2"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=1)
        monitor.update(stream_batches(1)[0])
        manager.note_batch()
        metrics = Metrics()
        CheckpointManager.recover(path, metrics=metrics.scope("recovery"))
        snap = metrics.snapshot()
        assert snap.counters["recovery.recoveries"] == 1

    def test_resumed_manager_keeps_period_alignment(self, tmp_path):
        batches = stream_batches(8)
        monitor = FACTORIES["naive"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=4)
        for batch in batches[:5]:
            monitor.update(batch)
            manager.note_batch()
        recovered, index = CheckpointManager.recover(path)
        fresh = CheckpointManager(recovered, path, every=4)
        fresh.resume(recovered, index)
        for batch in batches[index:]:
            recovered.update(batch)
            fresh.note_batch()
        # second period boundary (batch 8) checkpointed by the resumed manager
        _, final_index = CheckpointManager.load(path)
        assert final_index == 8


class TestChecksum:
    def _checkpointed(self, tmp_path, *, keep=1):
        monitor = FACTORIES["ag2"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=1, keep=keep)
        for batch in stream_batches(3):
            monitor.update(batch)
            manager.note_batch()
        return monitor, path

    def test_envelope_carries_a_crc_that_roundtrips(self, tmp_path):
        monitor, path = self._checkpointed(tmp_path)
        document = json.loads(path.read_text())
        assert isinstance(document["crc32"], int)
        restored, index = CheckpointManager.load(path)
        assert index == 3
        assert [o.oid for o in restored.window.contents] == [
            o.oid for o in monitor.window.contents
        ]

    def test_silent_payload_tamper_is_caught(self, tmp_path):
        _, path = self._checkpointed(tmp_path)
        document = json.loads(path.read_text())
        document["state"]["objects"][0]["weight"] += 1.0
        path.write_text(json.dumps(document))  # crc32 left stale
        with pytest.raises(CheckpointChecksumError, match="checksum"):
            CheckpointManager.load(path)
        # opting out of verification loads the damaged payload anyway
        restored, _ = CheckpointManager.load(path, verify_checksum=False)
        assert len(restored.window) == 3 * BATCH

    def test_checksum_less_legacy_checkpoint_still_loads(self, tmp_path):
        _, path = self._checkpointed(tmp_path)
        document = json.loads(path.read_text())
        del document["crc32"]
        path.write_text(json.dumps(document))
        _, index = CheckpointManager.load(path)
        assert index == 3

    def test_recover_skips_tampered_latest_with_metrics(self, tmp_path):
        _, path = self._checkpointed(tmp_path, keep=2)
        document = json.loads(path.read_text())
        document["state"]["objects"][-1]["x"] += 0.5
        path.write_text(json.dumps(document))
        metrics = Metrics()
        restored, index = CheckpointManager.recover(
            path, metrics=metrics.scope("ckpt")
        )
        assert index == 2  # fell back to the previous rotation
        assert len(restored.window) == 2 * BATCH
        snap = metrics.snapshot()
        assert snap.counters["ckpt.checkpoint_checksum_failures"] == 1
        assert snap.counters["ckpt.checkpoint_fallbacks"] == 1
        assert snap.counters["ckpt.recoveries"] == 1


class TestTornWrite:
    def test_torn_temp_from_a_mid_write_crash_is_ignored(self, tmp_path):
        """A crash during the checkpoint write itself leaves a torn
        ``*.tmp`` file beside the target; recovery must ignore it and
        load the committed checkpoint untouched."""
        monitor = FACTORIES["naive"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=1)
        for batch in stream_batches(2):
            monitor.update(batch)
            manager.note_batch()
        committed = path.read_text()
        # simulate the mid-write crash: a half-serialised temp file
        (tmp_path / "ckpt.json12345.tmp").write_text(committed[:25])
        restored, index = CheckpointManager.recover(path)
        assert index == 2
        assert path.read_text() == committed  # committed file untouched
        assert len(restored.window) == 2 * BATCH

    def test_interrupted_write_leaves_old_checkpoint_loadable(
        self, tmp_path, monkeypatch
    ):
        """If the process dies before os.replace, the previous complete
        checkpoint is still what readers see."""
        import os as _os

        monitor = FACTORIES["naive"]()
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(monitor, path, every=1, keep=0)
        monitor.update(stream_batches(1)[0])
        manager.note_batch()

        def explode(src, dst):
            raise OSError("simulated crash at the replace boundary")

        monitor.update(stream_batches(2)[1])
        monkeypatch.setattr(persist.os, "replace", explode)
        with pytest.raises(DurableWriteError):
            manager.note_batch()
        monkeypatch.undo()
        _, index = CheckpointManager.recover(path)
        assert index == 1  # the pre-crash checkpoint, complete
        assert [p.name for p in tmp_path.iterdir()] == ["ckpt.json"]
