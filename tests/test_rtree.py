"""Unit and property tests for the dynamic R-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.core.rtree import RTree
from repro.errors import InvalidParameterError


def rect(x1, y1, w, h) -> Rect:
    return Rect(x1, y1, x1 + w, y1 + h)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=2)
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=8, min_entries=5)
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=8, min_entries=0)

    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert list(tree.search_overlap(rect(0, 0, 10, 10))) == []


class TestInsertSearch:
    def test_single(self):
        tree = RTree()
        tree.insert("a", rect(0, 0, 4, 4))
        assert list(tree.search_overlap(rect(2, 2, 4, 4))) == ["a"]
        assert list(tree.search_overlap(rect(10, 10, 2, 2))) == []

    def test_strict_overlap_semantics(self):
        tree = RTree()
        tree.insert("a", rect(0, 0, 2, 2))
        # touching edge is NOT overlap, matching Rect.overlaps
        assert list(tree.search_overlap(rect(2, 0, 2, 2))) == []

    def test_many_inserts_split(self):
        tree = RTree(max_entries=4)
        for i in range(50):
            tree.insert(i, rect(i * 3.0, 0, 2, 2))
        tree.check_invariants()
        assert len(tree) == 50
        hits = set(tree.search_overlap(rect(0, 0, 10, 2)))
        assert hits == {0, 1, 2, 3}  # rects at x=0,3,6,9

    def test_duplicate_rects_different_keys(self):
        tree = RTree()
        for key in ("a", "b", "c"):
            tree.insert(key, rect(0, 0, 2, 2))
        assert set(tree.search_overlap(rect(1, 1, 1, 1))) == {"a", "b", "c"}


class TestDelete:
    def test_delete_existing(self):
        tree = RTree()
        tree.insert("a", rect(0, 0, 4, 4))
        assert tree.delete("a", rect(0, 0, 4, 4))
        assert len(tree) == 0
        assert list(tree.search_overlap(rect(0, 0, 10, 10))) == []

    def test_delete_missing(self):
        tree = RTree()
        tree.insert("a", rect(0, 0, 4, 4))
        assert not tree.delete("b", rect(0, 0, 4, 4))
        assert not tree.delete("a", rect(1, 1, 2, 2))
        assert len(tree) == 1

    def test_delete_specific_duplicate(self):
        tree = RTree()
        tree.insert("a", rect(0, 0, 2, 2))
        tree.insert("b", rect(0, 0, 2, 2))
        assert tree.delete("a", rect(0, 0, 2, 2))
        assert set(tree.search_overlap(rect(1, 1, 1, 1))) == {"b"}

    def test_mass_delete_condenses(self):
        tree = RTree(max_entries=4)
        rects = {i: rect((i % 10) * 3.0, (i // 10) * 3.0, 2, 2) for i in range(60)}
        for key, r in rects.items():
            tree.insert(key, r)
        for key in range(0, 60, 2):
            assert tree.delete(key, rects[key])
        tree.check_invariants()
        assert len(tree) == 30
        alive = set(tree.search_overlap(rect(-1, -1, 100, 100)))
        assert alive == set(range(1, 60, 2))


class _BruteIndex:
    def __init__(self):
        self.items: dict[object, Rect] = {}

    def search(self, query: Rect) -> set:
        return {k for k, r in self.items.items() if r.overlaps(query)}


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    ops=st.integers(min_value=5, max_value=120),
    max_entries=st.sampled_from([4, 6, 9]),
)
def test_matches_brute_force_under_churn(seed, ops, max_entries):
    """Random interleavings of insert/delete/search agree with a dict."""
    rng = random.Random(seed)
    tree = RTree(max_entries=max_entries)
    ref = _BruteIndex()
    next_key = 0
    for _ in range(ops):
        action = rng.random()
        if action < 0.55 or not ref.items:
            r = rect(rng.uniform(0, 80), rng.uniform(0, 80),
                     rng.uniform(0.5, 15), rng.uniform(0.5, 15))
            tree.insert(next_key, r)
            ref.items[next_key] = r
            next_key += 1
        else:
            victim = rng.choice(list(ref.items))
            assert tree.delete(victim, ref.items[victim])
            del ref.items[victim]
        query = rect(rng.uniform(0, 80), rng.uniform(0, 80),
                     rng.uniform(1, 25), rng.uniform(1, 25))
        assert set(tree.search_overlap(query)) == ref.search(query)
        assert len(tree) == len(ref.items)
    tree.check_invariants()
