"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    EmptyWindowError,
    InvalidGeometryError,
    InvalidParameterError,
    InvariantViolationError,
    ReproError,
    WindowOrderError,
)


@pytest.mark.parametrize(
    "exc",
    [
        InvalidGeometryError,
        InvalidParameterError,
        WindowOrderError,
        EmptyWindowError,
        InvariantViolationError,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


def test_single_except_clause_catches_library_failures():
    from repro.core.geometry import Rect

    with pytest.raises(ReproError):
        Rect(5, 0, 0, 0)


def test_library_never_wraps_type_errors():
    """Genuine bugs (wrong types) must propagate as-is, not be masked."""
    from repro.core.segment_tree import MaxCoverSegmentTree

    tree = MaxCoverSegmentTree(4)
    with pytest.raises(TypeError):
        tree.add("a", 2, 1.0)  # type: ignore[arg-type]
