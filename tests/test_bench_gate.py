"""Tests for the ``bench`` suite and the bench-mode perf gate.

Two acceptance properties are pinned here:

1. ``run_bench`` emits a well-formed document — every monitor × dataset
   row with positive throughput, naive's speedup exactly 1, and a
   multi-query scaling row when requested;
2. ``scripts/perf_gate.py --bench`` passes on a self-compare and
   demonstrably fails when a ≥15% kernel-speedup regression is injected
   into the current document.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

import repro.bench.bench as bench_mod
from repro.bench import (
    BENCH_DATASETS,
    BENCH_MONITORS,
    BenchProfile,
    bench_rows,
    run_bench,
    scaling_rows,
)
from repro.cli import main
from repro.core import vector
from repro.errors import InvalidParameterError


def _load_perf_gate():
    path = Path(__file__).resolve().parent.parent / "scripts" / "perf_gate.py"
    spec = importlib.util.spec_from_file_location("perf_gate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


#: seconds-not-minutes sizing, injected under the name "tiny"
TINY = BenchProfile(
    window_size=200,
    batch_size=40,
    batches=2,
    rect_side=1000.0,
    mq_queries=2,
    mq_workers=1,
    mq_window=150,
    mq_batch_size=30,
    mq_batches=2,
)


@pytest.fixture(scope="module")
def tiny_doc():
    original = bench_mod.PROFILES
    bench_mod.PROFILES = {**original, "tiny": TINY}
    try:
        return run_bench(seed=42, profiles=("tiny",), scaling=True)
    finally:
        bench_mod.PROFILES = original


class TestRunBench:
    def test_document_shape(self, tiny_doc):
        assert tiny_doc["schema"] == bench_mod.BENCH_SCHEMA
        assert tiny_doc["seed"] == 42
        assert tiny_doc["cpu_count"] >= 1
        rows = tiny_doc["profiles"]["tiny"]["rows"]
        seen = {(r["monitor"], r["dataset"], r["backend"]) for r in rows}
        expected = {
            (m, d, "python") for m in BENCH_MONITORS for d in BENCH_DATASETS
        }
        expected |= {
            (m, d, "python")
            for m in bench_mod.BENCH_SKEW_MONITORS
            for d in bench_mod.BENCH_SKEW_DATASETS
        }
        if vector.HAVE_NUMPY:
            expected |= {
                (m, d, "numpy")
                for m in bench_mod.BENCH_VECTOR_MONITORS
                for d in BENCH_DATASETS
            }
        assert seen == expected
        for row in rows:
            assert row["ops_per_s"] > 0
            assert row["mean_ms"] > 0
            assert row["p95_ms"] > 0
            assert row["speedup_vs_naive"] > 0

    def test_document_reports_vector_environment(self, tiny_doc):
        vec = tiny_doc["vector"]
        assert vec["available"] is vector.HAVE_NUMPY
        if vector.HAVE_NUMPY:
            assert isinstance(vec["numpy"], str)
        else:
            assert vec["numpy"] is None

    def test_rows_name_their_index(self, tiny_doc):
        rows = tiny_doc["profiles"]["tiny"]["rows"]
        indexes = {r["monitor"]: r["index"] for r in rows}
        assert indexes["naive"] == "none"
        assert indexes["ag2"] == "uniform-grid"
        assert indexes["ag2_quadtree"] == "quadtree"
        assert indexes["rtree"] == "rtree"

    def test_naive_speedup_is_exactly_one(self, tiny_doc):
        for row in tiny_doc["profiles"]["tiny"]["rows"]:
            if row["monitor"] == "naive":
                assert row["speedup_vs_naive"] == 1.0

    def test_scaling_row(self, tiny_doc):
        mq = tiny_doc["profiles"]["tiny"]["multi_query"]
        assert mq["queries"] == TINY.mq_queries
        assert mq["workers"] == TINY.mq_workers
        assert mq["serial_ms"] > 0
        assert mq["parallel_ms"] > 0
        assert mq["scaling"] > 0

    def test_flatteners(self, tiny_doc):
        rows = bench_rows(tiny_doc)
        expected = len(BENCH_MONITORS) * len(BENCH_DATASETS) + len(
            bench_mod.BENCH_SKEW_MONITORS
        ) * len(bench_mod.BENCH_SKEW_DATASETS)
        if vector.HAVE_NUMPY:
            expected += len(bench_mod.BENCH_VECTOR_MONITORS) * len(
                BENCH_DATASETS
            )
        assert len(rows) == expected
        assert all(row["profile"] == "tiny" for row in rows)
        (mq,) = scaling_rows(tiny_doc)
        assert mq["profile"] == "tiny"

    def test_unknown_profile_rejected(self):
        with pytest.raises(InvalidParameterError):
            bench_mod.run_profile_suite("no-such-profile", seed=1)


def _fake_doc(ag2_speedup: float, cpu_count: int = 1) -> dict:
    """A hand-authored bench document the gate can index."""
    rows = [
        {"monitor": "naive", "dataset": "uniform", "speedup_vs_naive": 1.0},
        {"monitor": "g2", "dataset": "uniform", "speedup_vs_naive": 1.4},
        {"monitor": "ag2", "dataset": "uniform", "speedup_vs_naive": ag2_speedup},
        {"monitor": "rtree", "dataset": "uniform", "speedup_vs_naive": 1.3},
        {"monitor": "topk", "dataset": "uniform", "speedup_vs_naive": 1.8},
    ]
    return {
        "schema": 1,
        "seed": 42,
        "cpu_count": cpu_count,
        "profiles": {
            "quick": {
                "rows": copy.deepcopy(rows),
                "multi_query": {
                    "queries": 4,
                    "workers": 2,
                    "serial_ms": 100.0,
                    "parallel_ms": 120.0,
                    "scaling": 100.0 / 120.0,
                },
            }
        },
    }


def _fake_skew_doc(grid_speedup: float, quad_speedup: float) -> dict:
    """A document carrying both aG2 backends on a skewed dataset, so
    the adaptive-index advantage check has something to compare."""
    doc = _fake_doc(ag2_speedup=3.0)
    doc["profiles"]["quick"]["rows"] += [
        {
            "monitor": "naive",
            "dataset": "gauss_static",
            "backend": "none",
            "speedup_vs_naive": 1.0,
        },
        {
            "monitor": "ag2",
            "dataset": "gauss_static",
            "backend": "uniform-grid",
            "speedup_vs_naive": grid_speedup,
        },
        {
            "monitor": "ag2_quadtree",
            "dataset": "gauss_static",
            "backend": "quadtree",
            "speedup_vs_naive": quad_speedup,
        },
    ]
    return doc


def _fake_vector_doc(
    numpy_advantage: float = 1.2,
    numpy_speedup: float = 4.0,
    available: bool = True,
) -> dict:
    """A schema-3 document with python and numpy aG2 rows on uniform.

    The python ag2 row is pinned at 10 ms; the numpy row's mean is
    ``10 / numpy_advantage`` so the columnar advantage is exactly the
    argument.  ``numpy_speedup`` is the numpy row's speedup over its
    own-backend naive baseline (the absolute-floor input).
    """
    rows = [
        {
            "monitor": "naive",
            "dataset": "uniform",
            "backend": "python",
            "index": "none",
            "mean_ms": 30.0,
            "speedup_vs_naive": 1.0,
        },
        {
            "monitor": "ag2",
            "dataset": "uniform",
            "backend": "python",
            "index": "uniform-grid",
            "mean_ms": 10.0,
            "speedup_vs_naive": 3.0,
        },
    ]
    if available:
        rows += [
            {
                "monitor": "naive",
                "dataset": "uniform",
                "backend": "numpy",
                "index": "none",
                "mean_ms": 24.0,
                "speedup_vs_naive": 1.0,
            },
            {
                "monitor": "ag2",
                "dataset": "uniform",
                "backend": "numpy",
                "index": "uniform-grid",
                "mean_ms": 10.0 / numpy_advantage,
                "speedup_vs_naive": numpy_speedup,
            },
        ]
    return {
        "schema": 3,
        "seed": 42,
        "cpu_count": 1,
        "vector": {
            "available": available,
            "numpy": "2.0.0" if available else None,
            "numba": None,
        },
        "profiles": {"full": {"rows": copy.deepcopy(rows)}},
    }


class TestBenchGate:
    @pytest.fixture()
    def gate(self):
        return _load_perf_gate()

    @staticmethod
    def _write(tmp_path: Path, name: str, doc: dict) -> str:
        path = tmp_path / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_self_compare_passes(self, gate, tmp_path):
        doc = _fake_doc(ag2_speedup=3.0)
        base = self._write(tmp_path, "base.json", doc)
        cur = self._write(tmp_path, "cur.json", doc)
        assert gate.check_bench(cur, base, tolerance=0.15) == []
        assert gate.main(["perf_gate.py", "--bench", cur, "--baseline", base]) == 0

    def test_injected_regression_fails(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _fake_doc(ag2_speedup=3.0))
        # 20% drop > 15% tolerance: the gate must fail, naming the row
        cur = self._write(tmp_path, "cur.json", _fake_doc(ag2_speedup=2.4))
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert len(failures) == 1
        assert "ag2" in failures[0] and "uniform" in failures[0]
        assert gate.main(["perf_gate.py", "--bench", cur, "--baseline", base]) == 1

    def test_drop_within_tolerance_passes(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _fake_doc(ag2_speedup=3.0))
        cur = self._write(tmp_path, "cur.json", _fake_doc(ag2_speedup=2.7))
        assert gate.check_bench(cur, base, tolerance=0.15) == []

    def test_missing_monitor_row_fails(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _fake_doc(ag2_speedup=3.0))
        broken = _fake_doc(ag2_speedup=3.0)
        broken["profiles"]["quick"]["rows"] = [
            row
            for row in broken["profiles"]["quick"]["rows"]
            if row["monitor"] != "ag2"
        ]
        cur = self._write(tmp_path, "cur.json", broken)
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any("bench row missing" in f for f in failures)

    def test_subset_of_profiles_is_fine(self, gate, tmp_path):
        """CI runs only `quick`; a baseline carrying `full` too must not
        trip the gate over the absent profile."""
        base_doc = _fake_doc(ag2_speedup=3.0)
        base_doc["profiles"]["full"] = copy.deepcopy(
            base_doc["profiles"]["quick"]
        )
        base = self._write(tmp_path, "base.json", base_doc)
        cur = self._write(tmp_path, "cur.json", _fake_doc(ag2_speedup=3.0))
        assert gate.check_bench(cur, base, tolerance=0.15) == []

    def test_scaling_gated_only_with_multiple_cpus(self, gate, tmp_path):
        base_doc = _fake_doc(ag2_speedup=3.0, cpu_count=4)
        base_doc["profiles"]["quick"]["multi_query"]["scaling"] = 1.7
        regressed = _fake_doc(ag2_speedup=3.0, cpu_count=4)
        regressed["profiles"]["quick"]["multi_query"]["scaling"] = 0.9
        base = self._write(tmp_path, "base.json", base_doc)
        cur = self._write(tmp_path, "cur.json", regressed)
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any("scaling regression" in f for f in failures)
        # same regression on a 1-CPU current host carries no signal
        regressed["cpu_count"] = 1
        cur_single = self._write(tmp_path, "cur1.json", regressed)
        assert gate.check_bench(cur_single, base, tolerance=0.15) == []

    def test_regression_message_names_backend(self, gate, tmp_path):
        base = self._write(
            tmp_path, "base.json", _fake_skew_doc(2.0, 3.0)
        )
        regressed = _fake_skew_doc(2.0, 3.0)
        for row in regressed["profiles"]["quick"]["rows"]:
            if row["monitor"] == "ag2_quadtree":
                row["speedup_vs_naive"] = 1.0
        cur = self._write(tmp_path, "cur.json", regressed)
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any(
            "ag2_quadtree [python backend, quadtree index]" in f
            for f in failures
        )

    def test_advantage_regression_fails(self, gate, tmp_path):
        """A regression the per-row floors cannot see: every row holds
        or improves, but the quadtree's edge over the grid collapses.
        Baseline advantage 3.0/2.0 = 1.50x, floor 1.50 * (1 - 2*0.15)
        = 1.05x; current 3.0/2.9 = 1.03x must fail."""
        base = self._write(
            tmp_path, "base.json", _fake_skew_doc(2.0, 3.0)
        )
        cur = self._write(tmp_path, "cur.json", _fake_skew_doc(2.9, 3.0))
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any(
            "adaptive-index advantage regression" in f
            and "gauss_static" in f
            for f in failures
        )

    def test_advantage_within_tolerance_passes(self, gate, tmp_path):
        base = self._write(
            tmp_path, "base.json", _fake_skew_doc(2.0, 3.0)
        )
        cur = self._write(tmp_path, "cur.json", _fake_skew_doc(2.2, 3.0))
        assert gate.check_bench(cur, base, tolerance=0.15) == []

    def test_advantage_skipped_without_quadtree_rows(self, gate, tmp_path):
        """Legacy documents without ag2_quadtree rows must not trip the
        advantage check (they already pass the per-row gates)."""
        base = self._write(tmp_path, "base.json", _fake_doc(ag2_speedup=3.0))
        cur = self._write(tmp_path, "cur.json", _fake_doc(ag2_speedup=3.0))
        assert gate.check_bench(cur, base, tolerance=0.15) == []

    def test_numpy_rows_skipped_on_numpy_less_host(self, gate, tmp_path):
        """A baseline with numpy rows compared against a run from a host
        without numpy must skip — not fail — the numpy rows."""
        base = self._write(tmp_path, "base.json", _fake_vector_doc())
        cur = self._write(
            tmp_path, "cur.json", _fake_vector_doc(available=False)
        )
        assert gate.check_bench(cur, base, tolerance=0.15) == []

    def test_numpy_rows_missing_with_numpy_available_fails(
        self, gate, tmp_path
    ):
        base = self._write(tmp_path, "base.json", _fake_vector_doc())
        broken = _fake_vector_doc()
        broken["profiles"]["full"]["rows"] = [
            row
            for row in broken["profiles"]["full"]["rows"]
            if row["backend"] == "python"
        ]
        cur = self._write(tmp_path, "cur.json", broken)
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any(
            "bench row missing" in f and "numpy" in f for f in failures
        )

    def test_columnar_advantage_regression_fails(self, gate, tmp_path):
        """Both backends' per-row speedups hold, but the numpy backend's
        edge over python collapses: baseline advantage 1.30x, floor
        1.30 * (1 - 2*0.15) = 0.91x; current 0.80x must fail."""
        base = self._write(
            tmp_path, "base.json", _fake_vector_doc(numpy_advantage=1.3)
        )
        cur = self._write(
            tmp_path, "cur.json", _fake_vector_doc(numpy_advantage=0.8)
        )
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any(
            "columnar backend advantage regression" in f for f in failures
        )

    def test_columnar_advantage_within_tolerance_passes(self, gate, tmp_path):
        base = self._write(
            tmp_path, "base.json", _fake_vector_doc(numpy_advantage=1.3)
        )
        cur = self._write(
            tmp_path, "cur.json", _fake_vector_doc(numpy_advantage=1.2)
        )
        assert gate.check_bench(cur, base, tolerance=0.15) == []

    def test_vector_speedup_floor_gates_both_documents(self, gate, tmp_path):
        """The full-profile aG2 uniform numpy row must clear the
        absolute 2x speedup_vs_naive floor in baseline and current."""
        good = self._write(
            tmp_path, "good.json", _fake_vector_doc(numpy_speedup=4.0)
        )
        bad = self._write(
            tmp_path, "bad.json", _fake_vector_doc(numpy_speedup=1.5)
        )
        assert gate.check_bench(good, good, tolerance=0.15) == []
        failures = gate.check_bench(good, bad, tolerance=0.99)
        assert any(
            "vector speedup floor violated (baseline)" in f for f in failures
        )
        failures = gate.check_bench(bad, good, tolerance=0.99)
        assert any(
            "vector speedup floor violated (current)" in f for f in failures
        )

    def test_disjoint_documents_fail_loudly(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _fake_doc(ag2_speedup=3.0))
        other = _fake_doc(ag2_speedup=3.0)
        other["profiles"] = {"weird": other["profiles"].pop("quick")}
        cur = self._write(tmp_path, "cur.json", other)
        failures = gate.check_bench(cur, base, tolerance=0.15)
        assert any("zero rows" in f for f in failures)

    def test_bench_mode_needs_both_paths(self, gate, tmp_path):
        doc = self._write(tmp_path, "doc.json", _fake_doc(ag2_speedup=3.0))
        assert gate.main(["perf_gate.py", "--bench", doc]) == 2


class TestBenchCli:
    def test_cli_writes_document(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            bench_mod, "PROFILES", {**bench_mod.PROFILES, "quick": TINY}
        )
        out = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "--profile",
                "quick",
                "--seed",
                "7",
                "--no-scaling",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["seed"] == 7
        assert "quick" in doc["profiles"]
        assert "multi_query" not in doc["profiles"]["quick"]
        printed = capsys.readouterr().out
        assert "speedup" in printed
