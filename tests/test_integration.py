"""End-to-end integration tests across the whole stack.

Long mixed streams from the real workload generators flow through all
monitors simultaneously; exact answers must agree at every batch and
the guarantees of the approximate and top-k variants must hold — with
expiry, skew, multi-cell rectangles and batch-size churn all in play.
"""

from __future__ import annotations

import pytest

from repro.core.ag2 import AG2Monitor
from repro.core.bruteforce import brute_force_topk_anchored
from repro.core.g2 import G2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject, to_weighted_rects
from repro.core.topk import TopKAG2Monitor
from repro.datasets import make_stream
from repro.streams import batches
from repro.window import CountWindow, TimeWindow

DOMAIN = 2_000.0
SIDE = 120.0


def run_agreement(dataset: str, capacity: int, batch: int, rounds: int):
    window = lambda: CountWindow(capacity)  # noqa: E731
    monitors = {
        "naive": NaiveMonitor(SIDE, SIDE, window()),
        "g2": G2Monitor(SIDE, SIDE, window()),
        "ag2": AG2Monitor(SIDE, SIDE, window()),
        "approx": AG2Monitor(SIDE, SIDE, window(), epsilon=0.3),
    }
    stream = make_stream(dataset, domain=DOMAIN, seed=13)
    for tick, group in enumerate(batches(stream, batch)):
        results = {name: m.update(group) for name, m in monitors.items()}
        exact = results["naive"].best_weight
        assert results["g2"].best_weight == pytest.approx(exact), (dataset, tick)
        assert results["ag2"].best_weight == pytest.approx(exact), (dataset, tick)
        assert results["approx"].best_weight >= 0.7 * exact - 1e-9
        assert results["approx"].best_weight <= exact + 1e-9
        monitors["ag2"].check_invariants()
        if tick >= rounds:
            break


@pytest.mark.parametrize(
    "dataset", ["synthetic", "tdrive_like", "geolife_like", "roma_like"]
)
def test_all_monitors_agree_on_every_workload(dataset):
    run_agreement(dataset, capacity=120, batch=20, rounds=12)


def test_agreement_with_heavy_churn():
    """Batch size ≥ half the window: constant mass expiry."""
    run_agreement("roma_like", capacity=60, batch=30, rounds=10)


def test_agreement_with_tiny_window():
    run_agreement("synthetic", capacity=5, batch=3, rounds=15)


def test_topk_tracks_anchored_oracle_on_skewed_stream():
    k = 4
    monitor = TopKAG2Monitor(SIDE, SIDE, CountWindow(80), k=k)
    stream = make_stream("geolife_like", domain=DOMAIN, seed=21)
    for tick, group in enumerate(batches(stream, 16)):
        result = monitor.update(group)
        alive = to_weighted_rects(monitor.window.contents, SIDE, SIDE)
        expected = [w for w, _ in brute_force_topk_anchored(alive, k)]
        assert [r.weight for r in result.regions] == pytest.approx(expected)
        if tick >= 8:
            break


def test_time_window_monitors_agree():
    """Same stream through time-based windows on all monitors."""
    duration = 40.0
    monitors = {
        "naive": NaiveMonitor(SIDE, SIDE, TimeWindow(duration)),
        "ag2": AG2Monitor(SIDE, SIDE, TimeWindow(duration)),
    }
    stream = make_stream("tdrive_like", domain=DOMAIN, seed=5)
    for tick, group in enumerate(batches(stream, 25)):
        results = {name: m.update(group) for name, m in monitors.items()}
        assert results["ag2"].best_weight == pytest.approx(
            results["naive"].best_weight
        )
        if tick >= 10:
            break
    # both windows expired the same objects
    assert len(monitors["naive"].window) == len(monitors["ag2"].window)


def test_mixed_update_and_pure_expiry_phases():
    """Arrivals, then silence (pure time passage), then arrivals again."""
    naive = NaiveMonitor(SIDE, SIDE, TimeWindow(10.0))
    ag2 = AG2Monitor(SIDE, SIDE, TimeWindow(10.0))
    group = [
        SpatialObject(x=100 + i, y=100 + i, weight=2.0, timestamp=float(i))
        for i in range(8)
    ]
    for m in (naive, ag2):
        m.update(group)
    assert ag2.result.best_weight == pytest.approx(naive.result.best_weight)
    # silence: advance both windows past some expirations
    for m in (naive, ag2):
        m.apply(m.window.advance_to(14.0))
    assert ag2.result.best_weight == pytest.approx(naive.result.best_weight)
    late = [SpatialObject(x=500, y=500, weight=1.0, timestamp=15.0)]
    for m in (naive, ag2):
        m.update(late)
    assert ag2.result.best_weight == pytest.approx(naive.result.best_weight)


def test_stats_reflect_algorithmic_hierarchy():
    """On a skewed stream, aG2 must do strictly fewer local sweeps than
    G2 while both stay exact — the paper's efficiency claim."""
    window = lambda: CountWindow(100)  # noqa: E731
    g2 = G2Monitor(SIDE, SIDE, window())
    ag2 = AG2Monitor(SIDE, SIDE, window())
    stream = make_stream("roma_like", domain=DOMAIN, seed=2)
    for tick, group in enumerate(batches(stream, 20)):
        g2.update(group)
        ag2.update(group)
        if tick >= 10:
            break
    assert ag2.stats.local_sweeps < g2.stats.local_sweeps
