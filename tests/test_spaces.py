"""Unit tests for the result model (Region / MaxRSResult)."""

from __future__ import annotations

from repro.core.geometry import Rect
from repro.core.spaces import MaxRSResult, Region, region_key


class TestRegion:
    def test_best_point_is_center(self):
        reg = Region(rect=Rect(0, 0, 4, 2), weight=10.0)
        assert reg.best_point == (2.0, 1.0)

    def test_same_extent(self):
        a = Region(rect=Rect(0, 0, 1, 1), weight=3.0)
        b = Region(rect=Rect(0, 0, 1, 1), weight=7.0, anchor_oid=5)
        c = Region(rect=Rect(0, 0, 2, 1), weight=3.0)
        assert a.same_extent(b)
        assert not a.same_extent(c)

    def test_region_key(self):
        reg = Region(rect=Rect(1, 2, 3, 4), weight=0.0)
        assert region_key(reg) == (1, 2, 3, 4)

    def test_anchor_default_none(self):
        assert Region(rect=Rect(0, 0, 1, 1), weight=0.0).anchor_oid is None


class TestMaxRSResult:
    def test_empty(self):
        res = MaxRSResult()
        assert res.is_empty
        assert res.best is None
        assert res.best_weight == 0.0

    def test_single(self):
        reg = Region(rect=Rect(0, 0, 1, 1), weight=5.0)
        res = MaxRSResult.single(reg, tick=3, window_size=10)
        assert res.best is reg
        assert res.best_weight == 5.0
        assert res.tick == 3 and res.window_size == 10

    def test_single_none(self):
        res = MaxRSResult.single(None, tick=1)
        assert res.is_empty

    def test_ranked_orders_by_weight(self):
        regions = [
            Region(rect=Rect(0, 0, 1, 1), weight=w) for w in (2.0, 9.0, 5.0)
        ]
        res = MaxRSResult.ranked(regions)
        assert [r.weight for r in res.regions] == [9.0, 5.0, 2.0]
        assert res.best_weight == 9.0

    def test_ranked_empty(self):
        assert MaxRSResult.ranked([]).is_empty
