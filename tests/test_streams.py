"""Tests for the stream generators."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import InvalidParameterError
from repro.streams import (
    Hotspot,
    HotspotMixtureStream,
    TrajectoryFleetStream,
    UniformStream,
    batches,
)


class TestUniformStream:
    def test_reproducible(self):
        a = UniformStream(domain=100.0, seed=5).take(20)
        b = UniformStream(domain=100.0, seed=5).take(20)
        assert [(o.x, o.y, o.weight) for o in a] == [
            (o.x, o.y, o.weight) for o in b
        ]

    def test_different_seeds_differ(self):
        a = UniformStream(seed=1).take(5)
        b = UniformStream(seed=2).take(5)
        assert [(o.x, o.y) for o in a] != [(o.x, o.y) for o in b]

    def test_within_domain(self):
        for o in UniformStream(domain=50.0, seed=3).take(200):
            assert 0 <= o.x <= 50 and 0 <= o.y <= 50
            assert 0 <= o.weight <= 1000

    def test_timestamps_increase(self):
        ts = [o.timestamp for o in UniformStream(seed=1, dt=2.0).take(10)]
        assert ts == [2.0 * i for i in range(10)]

    def test_unit_weights(self):
        objs = UniformStream(weight_max=0.0, seed=1).take(10)
        assert all(o.weight == 1.0 for o in objs)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            UniformStream(domain=0)
        with pytest.raises(InvalidParameterError):
            UniformStream(weight_max=-1)

    def test_independent_iterations(self):
        """Iterating the same stream twice replays it identically."""
        s = UniformStream(seed=9)
        assert [(o.x, o.y) for o in s.take(5)] == [
            (o.x, o.y) for o in s.take(5)
        ]


class TestHotspotMixtureStream:
    def test_hotspot_validation(self):
        with pytest.raises(InvalidParameterError):
            Hotspot(cx=2.0, cy=0.5, sigma=0.1, share=1.0)
        with pytest.raises(InvalidParameterError):
            Hotspot(cx=0.5, cy=0.5, sigma=0.0, share=1.0)
        with pytest.raises(InvalidParameterError):
            Hotspot(cx=0.5, cy=0.5, sigma=0.1, share=0.0)

    def test_requires_hotspots(self):
        with pytest.raises(InvalidParameterError):
            HotspotMixtureStream(hotspots=[])

    def test_skew_concentrates_mass(self):
        hotspot = Hotspot(cx=0.5, cy=0.5, sigma=0.02, share=0.9)
        stream = HotspotMixtureStream(
            hotspots=[hotspot], background_share=0.1, domain=1000.0, seed=4
        )
        objs = stream.take(500)
        near = sum(
            1 for o in objs if abs(o.x - 500) < 100 and abs(o.y - 500) < 100
        )
        assert near > 350  # ~90% of mass within 5 sigma

    def test_clamped_to_domain(self):
        hotspot = Hotspot(cx=0.0, cy=0.0, sigma=0.2, share=1.0)
        stream = HotspotMixtureStream(
            hotspots=[hotspot], background_share=0.0, domain=100.0, seed=1
        )
        for o in stream.take(200):
            assert 0 <= o.x <= 100 and 0 <= o.y <= 100

    def test_reproducible(self):
        hs = [Hotspot(cx=0.3, cy=0.7, sigma=0.05, share=1.0)]
        a = HotspotMixtureStream(hotspots=hs, seed=8).take(30)
        b = HotspotMixtureStream(hotspots=hs, seed=8).take(30)
        assert [(o.x, o.y) for o in a] == [(o.x, o.y) for o in b]


class TestTrajectoryFleetStream:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TrajectoryFleetStream(vehicles=0)
        with pytest.raises(InvalidParameterError):
            TrajectoryFleetStream(hotspot_bias=1.5)
        with pytest.raises(InvalidParameterError):
            TrajectoryFleetStream(speed=0)

    def test_within_domain(self):
        stream = TrajectoryFleetStream(vehicles=5, domain=100.0, seed=2)
        for o in stream.take(200):
            assert 0 <= o.x <= 100 and 0 <= o.y <= 100

    def test_temporal_locality(self):
        """Consecutive reports of one vehicle stay close (bounded speed)."""
        stream = TrajectoryFleetStream(
            vehicles=1, domain=1000.0, speed=0.01, seed=3
        )
        objs = stream.take(50)
        for a, b in zip(objs, objs[1:]):
            dist = ((a.x - b.x) ** 2 + (a.y - b.y) ** 2) ** 0.5
            assert dist <= 1000.0 * 0.01 * 1.5 + 1e-6

    def test_timestamps_strictly_increase(self):
        stream = TrajectoryFleetStream(vehicles=3, seed=1)
        ts = [o.timestamp for o in stream.take(30)]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_reproducible(self):
        a = TrajectoryFleetStream(vehicles=4, seed=6).take(20)
        b = TrajectoryFleetStream(vehicles=4, seed=6).take(20)
        assert [(o.x, o.y) for o in a] == [(o.x, o.y) for o in b]


class TestBatches:
    def test_groups_evenly(self):
        got = list(batches(iter(UniformStream(seed=1).take(10)), 5))
        assert [len(b) for b in got] == [5, 5]

    def test_trailing_partial_batch(self):
        got = list(batches(iter(UniformStream(seed=1).take(7)), 3))
        assert [len(b) for b in got] == [3, 3, 1]

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            next(batches(UniformStream(seed=1), 0))

    def test_unbounded_source(self):
        got = list(itertools.islice(batches(UniformStream(seed=1), 4), 3))
        assert [len(b) for b in got] == [4, 4, 4]

    def test_take_validation(self):
        with pytest.raises(InvalidParameterError):
            UniformStream(seed=1).take(-1)
