"""Unit tests for the aG2 branch-and-bound monitor (Algorithms 2-4)."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.core.ag2 import AG2Monitor
from repro.core.naive import NaiveMonitor
from repro.core.objects import SpatialObject
from repro.errors import InvalidParameterError
from repro.window import CountWindow, TimeWindow


def mk(capacity=50, side=10.0, **kw) -> AG2Monitor:
    return AG2Monitor(side, side, CountWindow(capacity), **kw)


class TestAG2Basics:
    def test_epsilon_validation(self):
        with pytest.raises(InvalidParameterError):
            mk(epsilon=-0.1)
        with pytest.raises(InvalidParameterError):
            mk(epsilon=1.0)

    def test_empty(self):
        m = mk()
        assert m.update([]).is_empty
        assert m.cell_count == 0
        assert m.pending_count == 0

    def test_single_object(self):
        m = mk()
        result = m.update([SpatialObject(x=5, y=5, weight=3.0)])
        assert result.best_weight == 3.0
        m.check_invariants()

    def test_matches_naive_over_stream(self):
        ag2 = mk(capacity=30)
        naive = NaiveMonitor(10, 10, CountWindow(30))
        for i in range(15):
            batch = make_objects(6, seed=200 + i, domain=70.0)
            a = ag2.update(batch)
            b = naive.update(batch)
            assert a.best_weight == pytest.approx(b.best_weight), f"batch {i}"
            ag2.check_invariants()

    def test_star_expiry_recovers(self):
        m = mk(capacity=2)
        m.update([SpatialObject(x=5, y=5, weight=9), SpatialObject(x=6, y=6, weight=9)])
        assert m.result.best_weight == 18.0
        result = m.update(
            [SpatialObject(x=80, y=80, weight=1), SpatialObject(x=81, y=81, weight=1)]
        )
        assert result.best_weight == 2.0
        m.check_invariants()

    def test_window_to_empty_and_back(self):
        m = AG2Monitor(10, 10, TimeWindow(1.0))
        m.update([SpatialObject(x=1, y=1, weight=5, timestamp=0.0)])
        assert m.result.best_weight == 5.0
        # everything expires with no replacement arrivals; the delta
        # must be applied to the monitor like any other
        result = m.apply(m.window.advance_to(10.0))
        assert result.is_empty
        m.update([SpatialObject(x=9, y=9, weight=2, timestamp=10.5)])
        assert m.result.best_weight == 2.0

    def test_pending_sets_drain_lazily(self):
        """Arrivals in a far-away light cell stay pending (pruned) until
        their cell bound matters."""
        m = mk(capacity=100, cell_size=20.0)
        # a heavy pair establishes a high threshold
        m.update([
            SpatialObject(x=5, y=5, weight=50),
            SpatialObject(x=6, y=6, weight=50),
        ])
        # light lone arrivals elsewhere should be prunable
        m.update([SpatialObject(x=500, y=500, weight=1)])
        assert m.result.best_weight == 100.0
        assert m.stats.cells_pruned >= 1
        m.check_invariants()

    def test_pruned_cell_revisited_when_threshold_drops(self):
        """Pending weight pruned under an old high threshold must be
        found when the heavy spaces expire."""
        m = mk(capacity=3, cell_size=20.0)
        m.update(
            [
                SpatialObject(x=5, y=5, weight=50),
                SpatialObject(x=6, y=6, weight=50),
                SpatialObject(x=500, y=500, weight=30),  # pruned for now
            ]
        )
        assert m.result.best_weight == 100.0
        # heavy pair expires; the previously pruned lone object must win
        result = m.update(
            [
                SpatialObject(x=900, y=900, weight=1),
                SpatialObject(x=950, y=950, weight=1),
            ]
        )
        assert result.best_weight == 30.0
        m.check_invariants()

    def test_prunes_more_than_it_sweeps(self):
        m = mk(capacity=200, side=5.0)
        for i in range(10):
            m.update(make_objects(20, seed=300 + i, domain=500.0))
        assert m.stats.cells_pruned > 0
        m.check_invariants()

    def test_fewer_sweeps_than_g2(self):
        """The whole point of aG2: strictly less Local-Plane-Sweep work
        on a non-trivial stream."""
        from repro.core.g2 import G2Monitor

        ag2 = mk(capacity=150)
        g2 = G2Monitor(10, 10, CountWindow(150))
        for i in range(10):
            batch = make_objects(15, seed=400 + i, domain=100.0)
            ag2.update(batch)
            g2.update(batch)
        assert ag2.stats.local_sweeps < g2.stats.local_sweeps

    def test_tie_keeps_current_star(self):
        m = mk()
        a = SpatialObject(x=5, y=5, weight=4.0)
        m.update([a])
        first_anchor = m.result.best.anchor_oid
        # an equal-weight lone object elsewhere must not displace s*
        m.update([SpatialObject(x=80, y=80, weight=4.0)])
        assert m.result.best.anchor_oid == first_anchor

    def test_zero_weight_stream(self):
        m = mk()
        result = m.update([SpatialObject(x=1, y=1, weight=0.0) for _ in range(5)])
        assert result.best_weight == 0.0
        assert not result.is_empty

    def test_stats_counters_move(self):
        m = mk(capacity=40)
        m.update(make_objects(40, seed=9, domain=60.0))
        s = m.stats
        assert s.updates == 1
        assert s.objects_seen == 40
        assert s.overlap_tests > 0
        assert s.local_sweeps > 0


class TestDirtyLifecycle:
    """The `dirty` flag must mean exactly "edges appended since the last
    exact sweep" — it drives the Rule-2 resweep decision, so a stale
    flag would either skip a needed sweep (wrong answers) or redo
    provably identical work (the Property 3 argument wasted)."""

    @staticmethod
    def _assert_flag_consistent(m: AG2Monitor) -> None:
        for cell in m._cells.values():
            for v in cell.graph.iter_vertices():
                assert v.dirty == (len(v.neighbors) != v.swept_degree), (
                    f"vertex seq={v.seq}: dirty={v.dirty} but "
                    f"deg={len(v.neighbors)} swept={v.swept_degree}"
                )

    def test_dirty_tracks_unswept_edges_over_stream(self):
        m = mk(capacity=40)
        for i in range(20):
            m.update(make_objects(8, seed=400 + i, domain=60.0))
            self._assert_flag_consistent(m)
            m.check_invariants()

    def test_rule2_pruned_vertex_stays_dirty_and_wins_after_expiry(self):
        # one big cell so the light pair shares the (always visited)
        # start cell with the heavy pair, but their dual rects do not
        # overlap the heavies': Rule 2 prunes the light *vertices*
        # (bound 2 < 100) and they must stay dirty — never swept
        m = mk(capacity=6, side=4.0, cell_size=40.0)
        m.update(
            [
                SpatialObject(x=5, y=5, weight=50.0),
                SpatialObject(x=6, y=6, weight=50.0),
                SpatialObject(x=30, y=30, weight=1.0),
                SpatialObject(x=31, y=31, weight=1.0),
            ]
        )
        assert m.result.best_weight == 100.0
        light = [
            v
            for cell in m._cells.values()
            for v in cell.graph.iter_vertices()
            if v.wr.obj.x > 20
        ]
        assert len(light) == 2, "light pair should have vertices"
        # edges live on the older endpoint: the older light vertex holds
        # the edge and must be dirty because Rule 2 pruned its sweep
        edged = [v for v in light if v.neighbors]
        assert edged, "expected the older light vertex to hold the edge"
        assert all(v.dirty for v in edged), "pruned vertices never swept"
        self._assert_flag_consistent(m)
        # expire the heavy pair: the dirty light pair must now be swept
        # exactly and win with its combined weight
        m.update(
            [
                SpatialObject(x=200, y=200, weight=0.1),
                SpatialObject(x=201, y=201, weight=0.1),
            ]
        )
        result = m.update(
            [
                SpatialObject(x=210, y=210, weight=0.1),
                SpatialObject(x=211, y=211, weight=0.1),
            ]
        )
        assert result.best_weight == 2.0
        self._assert_flag_consistent(m)
        m.check_invariants()
