"""End-to-end durability acceptance: the committed ``wal_recovery``
scenario and its CLI surfaces.

The scenario is the PR's proof obligation: a source explicitly marked
non-replayable, a mid-burst crash with a torn WAL tail and a
bit-flipped old record, a kill mid-append, an ENOSPC burst — and every
recovery must re-converge exactly from checkpoint + WAL tail with zero
reads of the original stream.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import InvalidParameterError, ReproError
from repro.soak import NonReplayableSource, get_scenario, run_soak
from repro.soak.scenario import Phase, Scenario


class TestWalRecoveryScenario:
    @pytest.fixture(scope="class")
    def report(self):
        return run_soak("wal_recovery")

    def test_campaign_passes(self, report):
        assert report.ok, report.failures()

    def test_recoveries_never_touched_the_source(self, report):
        assert not report.source_replayable
        assert report.crashes == 2
        assert report.recoveries == 2
        assert report.recovery_source_reads == 0

    def test_every_injury_was_exercised(self, report):
        assert report.wal_appends > 0
        assert report.wal_fsyncs > 0  # fsync=always
        assert report.wal_replayed_batches > 0
        assert report.wal_truncated_tails > 0  # torn_tail + partial_append
        assert report.wal_skipped_records > 0  # the bitflip
        assert report.wal_segments_compacted > 0  # retention ran
        assert report.wal_spill_restored > 0  # in-flight buffer came back
        assert report.enospc_injected == 1
        assert report.enospc_recovered == 1

    def test_convergence_was_actually_checked(self, report):
        # crash phases and the settle phase all end in an exact
        # comparison against the uninterrupted reference window
        assert report.convergence_checks >= 4

    def test_report_is_deterministic(self, report):
        again = run_soak("wal_recovery")
        assert report.to_dict() == again.to_dict()

    def test_report_round_trips_as_json(self, report):
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["wal_enabled"] is True
        assert doc["source_replayable"] is False
        assert doc["recovery_source_reads"] == 0


class TestScenarioValidationForWal:
    def test_wal_faults_require_wal(self):
        with pytest.raises(InvalidParameterError, match="wal"):
            Scenario(
                name="x",
                description="d",
                phases=(
                    Phase(
                        name="p",
                        ticks=4,
                        crash_at=1,
                        wal_corrupt=("torn_tail",),
                    ),
                ),
            )

    def test_non_replayable_requires_wal(self):
        with pytest.raises(InvalidParameterError, match="replayable"):
            Scenario(
                name="x",
                description="d",
                source_replayable=False,
                phases=(Phase(name="p", ticks=4),),
            )

    def test_wal_corrupt_requires_crash(self):
        with pytest.raises(InvalidParameterError, match="crash"):
            Phase(name="p", ticks=4, wal_corrupt=("torn_tail",))

    def test_unknown_wal_corrupt_mode(self):
        with pytest.raises(InvalidParameterError):
            Phase(name="p", ticks=4, crash_at=1, wal_corrupt=("nope",))


class TestNonReplayableSource:
    def test_counts_reads_and_refuses_second_iteration(self):
        source = NonReplayableSource([1, 2, 3])
        assert list(source) == [1, 2, 3]
        assert source.reads == 3
        with pytest.raises(ReproError, match="not replayable"):
            iter(source)


class TestWalCli:
    def test_soak_wal_dir_then_inspect(self, capsys, tmp_path):
        code = main(
            [
                "soak",
                "--scenario",
                "wal_recovery",
                "--checkpoint-dir",
                str(tmp_path),
                "--wal-dir",
                str(tmp_path / "log"),
                "--json",
                str(tmp_path / "report.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "wal appends" in out
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["soak_passed"] is True
        assert doc["recovery_source_reads"] == 0
        # the surviving log passes offline verification
        code = main(
            [
                "wal",
                "inspect",
                "--dir",
                str(tmp_path / "log"),
                "--json",
                str(tmp_path / "inspect.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "every record verified" in out
        inspect_doc = json.loads((tmp_path / "inspect.json").read_text())
        assert inspect_doc["clean"] and inspect_doc["records"] > 0

    def test_inspect_gates_on_damage(self, capsys, tmp_path):
        from conftest import make_objects
        from repro.durability import WriteAheadLog
        from repro.soak import corrupt_wal

        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch(make_objects(3, seed=1, domain=40.0))
            wal.append_batch(make_objects(3, seed=2, domain=40.0))
        corrupt_wal(tmp_path, "bitflip")
        assert main(["wal", "inspect", "--dir", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_soak_list_includes_wal_recovery(self, capsys):
        assert main(["soak", "--list"]) == 0
        assert "wal_recovery" in capsys.readouterr().out


class TestWalRecoveryScenarioShape:
    def test_committed_scenario_is_wal_enabled(self):
        scn = get_scenario("wal_recovery")
        assert scn.wal and not scn.source_replayable
        assert scn.wal_fsync == "always"
        kinds = [tuple(p.wal_corrupt) for p in scn.phases]
        assert ("torn_tail", "bitflip") in kinds
        assert ("partial_append",) in kinds
        assert any(p.enospc_at is not None for p in scn.phases)
