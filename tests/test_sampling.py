"""Tests for the sampling-based approximate MaxRS comparator ([25])."""

from __future__ import annotations

import random

import pytest

from conftest import make_objects, make_rects
from repro.core.naive import NaiveMonitor
from repro.core.planesweep import plane_sweep_max
from repro.core.sampling import (
    SamplingMonitor,
    sample_maxrs,
    suggested_sample_size,
)
from repro.errors import InvalidParameterError
from repro.window import CountWindow


class TestSuggestedSampleSize:
    def test_monotone_in_epsilon(self):
        assert suggested_sample_size(10_000, 0.1) > suggested_sample_size(
            10_000, 0.5
        )

    def test_clamped_to_population(self):
        assert suggested_sample_size(10, 0.01) == 10

    def test_empty_population(self):
        assert suggested_sample_size(0, 0.1) == 0

    def test_epsilon_validation(self):
        with pytest.raises(InvalidParameterError):
            suggested_sample_size(100, 0.0)
        with pytest.raises(InvalidParameterError):
            suggested_sample_size(100, 1.0)


class TestSampleMaxRS:
    def test_empty(self):
        assert sample_maxrs([], 5, random.Random(0)) is None

    def test_sample_size_validation(self):
        rects = make_rects(5)
        with pytest.raises(InvalidParameterError):
            sample_maxrs(rects, 0, random.Random(0))

    def test_full_sample_is_exact(self):
        rects = make_rects(20, seed=3, domain=80.0)
        exact = plane_sweep_max(rects)
        sampled = sample_maxrs(rects, len(rects), random.Random(0))
        assert sampled.weight == pytest.approx(exact.weight)

    def test_oversized_sample_is_exact(self):
        rects = make_rects(10, seed=4)
        exact = plane_sweep_max(rects)
        sampled = sample_maxrs(rects, 99, random.Random(0))
        assert sampled.weight == pytest.approx(exact.weight)

    def test_estimate_concentrates_on_dense_input(self):
        """On a dense uniform workload the scaled estimate lands within
        a modest factor of the truth (averaged over seeds)."""
        rects = make_rects(400, seed=7, domain=60.0, side=20.0)
        exact = plane_sweep_max(rects).weight
        estimates = [
            sample_maxrs(rects, 200, random.Random(seed)).weight
            for seed in range(10)
        ]
        mean = sum(estimates) / len(estimates)
        assert 0.6 * exact <= mean <= 1.4 * exact

    def test_answers_vary_across_seeds(self):
        """The paper's first objection to [25] as a monitor: the answer
        is not stable run to run."""
        rects = make_rects(300, seed=9, domain=60.0, side=15.0)
        weights = {
            round(sample_maxrs(rects, 60, random.Random(seed)).weight, 6)
            for seed in range(8)
        }
        assert len(weights) > 1


class TestSamplingMonitor:
    def test_epsilon_validation(self):
        with pytest.raises(InvalidParameterError):
            SamplingMonitor(10, 10, CountWindow(5), epsilon=0.0)

    def test_tracks_window(self):
        m = SamplingMonitor(10, 10, CountWindow(50), epsilon=0.3, seed=1)
        result = m.update(make_objects(30, seed=2, domain=40.0))
        assert not result.is_empty
        assert result.window_size == 30

    def test_empty_window(self):
        m = SamplingMonitor(10, 10, CountWindow(5), epsilon=0.3)
        assert m.update([]).is_empty

    def test_recomputes_every_batch(self):
        m = SamplingMonitor(10, 10, CountWindow(100), epsilon=0.3)
        for i in range(3):
            m.update(make_objects(10, seed=i))
        assert m.stats.full_sweeps == 3

    def test_estimate_not_wildly_off_exact(self):
        sampling = SamplingMonitor(15, 15, CountWindow(300), epsilon=0.2, seed=3)
        naive = NaiveMonitor(15, 15, CountWindow(300))
        batch = make_objects(300, seed=11, domain=80.0)
        a = sampling.update(batch)
        b = naive.update(batch)
        assert 0.4 * b.best_weight <= a.best_weight <= 2.0 * b.best_weight
