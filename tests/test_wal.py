"""Unit tests for the durable write-ahead log: frame codec, segment
files, append/rotate/resume, retention, fsync contracts, typed errors.
"""

from __future__ import annotations

import io
import os

import pytest

from conftest import make_objects
from repro.durability.record import (
    MAGIC,
    decode_payload,
    encode_payload,
    encode_record,
    objects_from_payload,
    objects_to_payload,
    scan_frames,
)
from repro.durability.segment import (
    FsyncPolicy,
    list_segments,
    segment_first_seq,
    segment_name,
)
from repro.durability.wal import WriteAheadLog
from repro.errors import (
    DiskFullError,
    DurableWriteError,
    InvalidParameterError,
    WalCorruptionError,
)


class TestFrameCodec:
    def test_round_trip(self):
        objects = make_objects(5, seed=7, domain=50.0)
        payload = encode_payload(
            {"kind": "batch", "index": 3, "objects": objects_to_payload(objects)}
        )
        frame = encode_record(9, payload)
        assert frame.startswith(MAGIC)
        scan = scan_frames(io.BytesIO(frame))
        assert not scan.torn
        (record,) = scan.records
        assert record.ok and record.seq == 9
        document = decode_payload(record.payload)
        assert document["index"] == 3
        assert objects_from_payload(document["objects"]) == objects

    def test_objects_round_trip_exact(self):
        objects = make_objects(20, seed=11, domain=1000.0)
        assert objects_from_payload(objects_to_payload(objects)) == objects

    def test_crc_covers_seq(self):
        frame = bytearray(encode_record(1, encode_payload({"index": 1})))
        # perturb the seq inside the header: CRC must catch it
        frame[len(MAGIC) + 4 + 7] ^= 0x01
        scan = scan_frames(io.BytesIO(bytes(frame)))
        (record,) = scan.records
        assert not record.ok

    def test_truncated_frame_is_torn_not_damaged(self):
        frame = encode_record(1, encode_payload({"index": 1}))
        scan = scan_frames(io.BytesIO(frame[:-3]))
        assert scan.torn and not scan.records
        assert scan.truncate_at == 0

    def test_bad_payload_json_raises_typed(self):
        with pytest.raises(WalCorruptionError):
            decode_payload(b"\xff\xfenot json")


class TestSegmentNaming:
    def test_round_trip_and_ordering(self, tmp_path):
        for seq in (90, 5, 1200):
            (tmp_path / segment_name(seq)).write_bytes(b"")
        (tmp_path / "other.json").write_text("{}")
        found = list_segments(tmp_path)
        assert [seq for seq, _ in found] == [5, 90, 1200]
        assert segment_first_seq(found[0][1]) == 5

    def test_rejects_nonpositive_seq(self):
        with pytest.raises(InvalidParameterError):
            segment_name(0)


class TestWriteAheadLogAppend:
    def test_appends_assign_monotone_seq_and_index(self, tmp_path):
        objects = make_objects(4, seed=3, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append_batch(objects) == 1
            assert wal.append_batch(objects) == 2
            assert wal.last_index == 2
            assert wal.appends == 2

    def test_empty_batch_rejected(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(InvalidParameterError, match="empty"):
                wal.append_batch([])

    def test_index_must_advance(self, tmp_path):
        objects = make_objects(2, seed=3, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch(objects, index=5)
            with pytest.raises(InvalidParameterError, match="advance"):
                wal.append_batch(objects, index=5)

    def test_rotation_by_record_count(self, tmp_path):
        objects = make_objects(2, seed=3, domain=40.0)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            for _ in range(5):
                wal.append_batch(objects)
        names = [path.name for _seq, path in list_segments(tmp_path)]
        assert names == [segment_name(1), segment_name(3), segment_name(5)]

    def test_spill_record_allows_empty_and_repeats(self, tmp_path):
        objects = make_objects(2, seed=3, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch(objects)
            assert wal.log_spill([], index=wal.last_index) == 2
            assert wal.log_spill(objects, index=wal.last_index) == 3
            with pytest.raises(InvalidParameterError):
                wal.log_spill(objects, index=-1)


class TestWriteAheadLogResume:
    def test_reopen_resumes_seq_and_index(self, tmp_path):
        objects = make_objects(3, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            for _ in range(3):
                wal.append_batch(objects)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            assert wal.last_seq == 3
            assert wal.last_index == 3
            assert wal.append_batch(objects) == 4

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        objects = make_objects(3, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch(objects)
            wal.append_batch(objects)
        (_seq, path), = list_segments(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the final frame
        with WriteAheadLog(tmp_path) as wal:
            assert wal.torn_tails_truncated == 1
            assert wal.last_seq == 1  # the torn record is gone
            assert wal.append_batch(objects) == 2
        # the log is whole again: everything scans clean
        with path.open("rb") as fh:
            scan = scan_frames(fh)
        assert not scan.torn and len(scan.records) == 2

    def test_damaged_record_still_reserves_its_seq(self, tmp_path):
        objects = make_objects(3, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch(objects)
            wal.append_batch(objects)
        (_seq, path), = list_segments(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 16 + 2] ^= 0x10  # flip a byte in record 1
        path.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            # seq 1 is damaged but must not be reused — that would
            # forge history under its CRC
            assert wal.last_seq == 2
            assert wal.append_batch(objects) == 3


class TestFsyncPolicies:
    def test_always_fsyncs_every_append(self, tmp_path):
        objects = make_objects(2, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            wal.append_batch(objects)
            wal.append_batch(objects)
            assert wal.fsyncs == 2

    def test_batch_fsyncs_only_on_sync_and_rotation(self, tmp_path):
        objects = make_objects(2, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path, fsync="batch", segment_records=100) as wal:
            wal.append_batch(objects)
            wal.append_batch(objects)
            assert wal.fsyncs == 0
            wal.sync()
            assert wal.fsyncs == 1

    def test_os_never_fsyncs_except_forced_spill(self, tmp_path):
        objects = make_objects(2, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path, fsync="os") as wal:
            wal.append_batch(objects)
            wal.sync()
            assert wal.fsyncs == 0
            wal.log_spill(objects, index=wal.last_index)
            assert wal.fsyncs == 1  # spills are always forced durable

    def test_policy_parse_and_reject(self, tmp_path):
        assert FsyncPolicy.coerce("BATCH") is FsyncPolicy.BATCH
        with pytest.raises(InvalidParameterError, match="fsync policy"):
            WriteAheadLog(tmp_path, fsync="sometimes")


class TestTypedWriteErrors:
    def test_enospc_becomes_disk_full_error(self, tmp_path):
        objects = make_objects(2, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.fault_hook = lambda op: op == "append" and (
                (_ for _ in ()).throw(OSError(28, "No space left on device"))
            )
            with pytest.raises(DiskFullError) as exc_info:
                wal.append_batch(objects)
            assert exc_info.value.errno == 28
            # the failed append reserved nothing
            assert wal.last_seq == 0 and wal.appends == 0

    def test_other_oserror_becomes_durable_write_error(self, tmp_path):
        objects = make_objects(2, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.fault_hook = lambda op: op == "append" and (
                (_ for _ in ()).throw(OSError(5, "Input/output error"))
            )
            with pytest.raises(DurableWriteError) as exc_info:
                wal.append_batch(objects)
            assert not isinstance(exc_info.value, DiskFullError)
            assert isinstance(exc_info.value.__cause__, OSError)

    def test_append_succeeds_after_hook_cleared(self, tmp_path):
        objects = make_objects(2, seed=5, domain=40.0)
        with WriteAheadLog(tmp_path) as wal:
            wal.fault_hook = lambda op: op == "append" and (
                (_ for _ in ()).throw(OSError(28, "full"))
            )
            with pytest.raises(DiskFullError):
                wal.append_batch(objects)
            wal.fault_hook = None
            assert wal.append_batch(objects) == 1


class TestCompaction:
    def test_covered_segments_deleted_never_newest(self, tmp_path):
        objects = make_objects(2, seed=9, domain=40.0)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            for _ in range(6):
                wal.append_batch(objects)
            # segments hold indexes [1,2] [3,4] [5,6] plus the fresh
            # (empty) one opened by the last rotation
            assert wal.compact(0) == 0
            assert wal.compact(4) == 2  # [1,2] and [3,4] both covered
            assert wal.compact(1000) == 1  # newest survives regardless
            assert wal.segments_compacted == 3
        assert len(list_segments(tmp_path)) == 1

    def test_compaction_survives_reopen(self, tmp_path):
        objects = make_objects(2, seed=9, domain=40.0)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            for _ in range(6):
                wal.append_batch(objects)
        with WriteAheadLog(tmp_path, segment_records=2) as wal:
            # reopened bookkeeping reads actual first records, which is
            # one record more conservative than the in-memory rule:
            # [3,4]'s survival keeps floor-4 recovery self-sufficient
            assert wal.compact(4) == 1
            assert wal.last_index == 6

    def test_note_recovered_advances_index(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.note_recovered(7)
            assert wal.last_index == 7
            wal.note_recovered(3)  # never regresses
            assert wal.last_index == 7
            objects = make_objects(2, seed=9, domain=40.0)
            wal.append_batch(objects)
            assert wal.last_index == 8


class TestValidation:
    def test_bad_segment_records(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="segment_records"):
            WriteAheadLog(tmp_path, segment_records=0)

    def test_directory_created(self, tmp_path):
        target = tmp_path / "a" / "b"
        with WriteAheadLog(target):
            assert target.is_dir()
        assert os.path.isdir(target)
