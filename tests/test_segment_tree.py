"""Unit and property tests for the max-cover segment tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vector
from repro.core.segment_tree import MaxCoverSegmentTree
from repro.errors import InvalidParameterError


class TestBasics:
    def test_initial_state_is_zero(self):
        tree = MaxCoverSegmentTree(8)
        assert tree.max_value == 0.0
        assert tree.argmax == 0
        assert tree.to_list() == [0.0] * 8

    def test_size_one(self):
        tree = MaxCoverSegmentTree(1)
        tree.add(0, 0, 3.5)
        assert tree.max_value == 3.5
        assert tree.argmax == 0

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            MaxCoverSegmentTree(0)
        with pytest.raises(InvalidParameterError):
            MaxCoverSegmentTree(-3)

    def test_single_range_add(self):
        tree = MaxCoverSegmentTree(6)
        tree.add(1, 3, 2.0)
        assert tree.to_list() == [0, 2, 2, 2, 0, 0]
        assert tree.max_value == 2.0
        assert tree.argmax == 1  # leftmost slot of the max run

    def test_overlapping_adds_stack(self):
        tree = MaxCoverSegmentTree(6)
        tree.add(0, 3, 1.0)
        tree.add(2, 5, 1.0)
        assert tree.to_list() == [1, 1, 2, 2, 1, 1]
        assert tree.max_value == 2.0
        assert tree.argmax == 2

    def test_remove_restores(self):
        tree = MaxCoverSegmentTree(5)
        tree.add(0, 4, 3.0)
        tree.add(1, 2, 2.0)
        tree.add(1, 2, -2.0)
        assert tree.to_list() == [3, 3, 3, 3, 3]
        assert tree.max_value == 3.0

    def test_argmax_leftmost_tie(self):
        tree = MaxCoverSegmentTree(7)
        tree.add(4, 5, 1.0)
        tree.add(1, 2, 1.0)
        assert tree.argmax == 1

    def test_full_range_add(self):
        tree = MaxCoverSegmentTree(10)
        tree.add(0, 9, 5.0)
        assert tree.max_value == 5.0
        assert tree.argmax == 0

    def test_out_of_bounds_rejected(self):
        tree = MaxCoverSegmentTree(4)
        with pytest.raises(InvalidParameterError):
            tree.add(-1, 2, 1.0)
        with pytest.raises(InvalidParameterError):
            tree.add(0, 4, 1.0)
        with pytest.raises(InvalidParameterError):
            tree.add(3, 2, 1.0)

    def test_range_max_query(self):
        tree = MaxCoverSegmentTree(8)
        tree.add(0, 2, 4.0)
        tree.add(5, 7, 6.0)
        value, slot = tree.range_max(0, 3)
        assert value == 4.0 and slot == 0
        value, slot = tree.range_max(3, 7)
        assert value == 6.0 and slot == 5
        value, slot = tree.range_max(3, 4)
        assert value == 0.0

    def test_range_max_bounds_checked(self):
        tree = MaxCoverSegmentTree(4)
        with pytest.raises(InvalidParameterError):
            tree.range_max(0, 9)

    def test_negative_weights_supported(self):
        tree = MaxCoverSegmentTree(4)
        tree.add(0, 3, -2.0)
        tree.add(1, 1, 5.0)
        assert tree.max_value == 3.0
        assert tree.argmax == 1


class _NaiveArray:
    """Reference implementation: plain array with linear scans."""

    def __init__(self, size: int) -> None:
        self.values = [0.0] * size

    def add(self, lo: int, hi: int, delta: float) -> None:
        for i in range(lo, hi + 1):
            self.values[i] += delta

    def range_max(self, lo: int, hi: int) -> tuple[float, int]:
        best, arg = float("-inf"), lo
        for i in range(lo, hi + 1):
            if self.values[i] > best:
                best, arg = self.values[i], i
        return best, arg


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    ops=st.integers(min_value=1, max_value=80),
)
def test_matches_naive_reference(size: int, seed: int, ops: int):
    """Random interleavings of adds and queries agree with a plain array."""
    rng = random.Random(seed)
    tree = MaxCoverSegmentTree(size)
    ref = _NaiveArray(size)
    for _ in range(ops):
        lo = rng.randrange(size)
        hi = rng.randrange(lo, size)
        delta = rng.choice([-3.0, -1.0, 0.5, 1.0, 2.5])
        tree.add(lo, hi, delta)
        ref.add(lo, hi, delta)
        qlo = rng.randrange(size)
        qhi = rng.randrange(qlo, size)
        tval, targ = tree.range_max(qlo, qhi)
        rval, rarg = ref.range_max(qlo, qhi)
        assert tval == pytest.approx(rval)
        assert ref.values[targ] == pytest.approx(rval)
        assert tree.max_value == pytest.approx(max(ref.values))
        assert ref.values[tree.argmax] == pytest.approx(max(ref.values))


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_insert_then_remove_cancels(size: int, seed: int):
    """Adding then subtracting the same intervals returns to all-zero."""
    rng = random.Random(seed)
    tree = MaxCoverSegmentTree(size)
    intervals = []
    for _ in range(10):
        lo = rng.randrange(size)
        hi = rng.randrange(lo, size)
        w = rng.uniform(0.5, 5.0)
        intervals.append((lo, hi, w))
        tree.add(lo, hi, w)
    for lo, hi, w in intervals:
        tree.add(lo, hi, -w)
    assert tree.max_value == pytest.approx(0.0, abs=1e-9)
    assert all(abs(v) < 1e-9 for v in tree.to_list())


class TestReset:
    def test_reset_clears_state(self):
        tree = MaxCoverSegmentTree(8)
        tree.add(2, 6, 4.0)
        tree.reset(8)
        assert tree.max_value == 0.0
        assert tree.argmax == 0
        assert tree.to_list() == [0.0] * 8

    def test_reset_shrink_reuses_arrays(self):
        tree = MaxCoverSegmentTree(32)
        tree.add(0, 31, 1.0)
        backing = tree._mx
        tree.reset(5)
        assert tree._mx is backing  # no reallocation on shrink
        assert tree.size == 5
        assert tree.to_list() == [0.0] * 5
        tree.add(1, 3, 2.0)
        assert (tree.max_value, tree.argmax) == (2.0, 1)

    def test_reset_grow_reallocates(self):
        tree = MaxCoverSegmentTree(4)
        tree.reset(64)
        assert tree.size == 64
        tree.add(60, 63, 7.0)
        assert (tree.max_value, tree.argmax) == (7.0, 60)

    def test_reset_invalid_size(self):
        tree = MaxCoverSegmentTree(4)
        with pytest.raises(InvalidParameterError):
            tree.reset(0)

    def test_stale_state_cannot_leak_after_shrink(self):
        tree = MaxCoverSegmentTree(16)
        tree.add(10, 15, 100.0)  # only slots outside the shrunken range
        tree.reset(3)
        assert tree.max_value == 0.0
        tree.add(0, 0, 1.0)
        assert (tree.max_value, tree.argmax) == (1.0, 0)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=25), min_size=2, max_size=5
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_reset_reuse_matches_fresh_tree(sizes: list[int], seed: int):
    """One pooled tree driven through reset() phases behaves exactly
    like a freshly constructed tree of each phase's size."""
    rng = random.Random(seed)
    pooled = MaxCoverSegmentTree(sizes[0])
    for phase, size in enumerate(sizes):
        if phase:
            pooled.reset(size)
        fresh = MaxCoverSegmentTree(size)
        ref = _NaiveArray(size)
        for _ in range(rng.randrange(1, 12)):
            lo = rng.randrange(size)
            hi = rng.randrange(lo, size)
            delta = rng.choice([-2.0, -0.5, 1.0, 3.0])
            for t in (pooled, fresh):
                t.add(lo, hi, delta)
            ref.add(lo, hi, delta)
        # pooled and fresh saw identical op sequences: results must be
        # bit-identical, not merely approximately equal
        assert pooled.peek() == fresh.peek()
        assert pooled.to_list() == fresh.to_list()
        qlo = rng.randrange(size)
        qhi = rng.randrange(qlo, size)
        assert pooled.range_max(qlo, qhi) == fresh.range_max(qlo, qhi)
        rval, _rarg = ref.range_max(qlo, qhi)
        assert pooled.range_max(qlo, qhi)[0] == pytest.approx(rval)
        assert pooled.max_value == pytest.approx(max(ref.values))


@pytest.mark.skipif(
    not vector.HAVE_NUMPY, reason="numpy not installed ([vector] extra)"
)
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    m=st.integers(min_value=1, max_value=20),
)
def test_vector_event_kernels_agree(seed: int, m: int):
    """The jittable array tree and the pooled list tree produce
    bit-identical sweep results over the same sorted event stream.

    Without numba the array kernel never runs in production (the sweep
    routes to the list tree), so this differential is what keeps it
    honest until a JIT-equipped host exercises it.
    """
    np = pytest.importorskip("numpy")
    rng = random.Random(seed)
    x1 = np.array([rng.uniform(0, 20) for _ in range(m)])
    y1 = np.array([float(rng.choice([rng.uniform(0, 20), rng.randrange(20)]))
                   for _ in range(m)])
    x2 = x1 + np.array([rng.uniform(0.5, 6) for _ in range(m)])
    y2 = y1 + np.array(
        [float(rng.choice([rng.uniform(0.5, 6), 1.0])) for _ in range(m)]
    )
    w = np.array([rng.choice([0.0, 0.5, 1.0, 2.0]) for _ in range(m)])
    # event construction exactly as vector.sweep_columns_max builds it
    xs = np.unique(np.concatenate((x1, x2)))
    lo = np.searchsorted(xs, x1)
    hi = np.searchsorted(xs, x2) - 1
    n_slots = max(1, xs.shape[0] - 1)
    ey = np.concatenate((y1, y2))
    ekind = np.concatenate(
        (np.ones(m, dtype=np.int64), np.zeros(m, dtype=np.int64))
    )
    seq = np.arange(m, dtype=np.int64)
    eseq = np.concatenate((seq, seq))
    elo = np.concatenate((lo, lo))
    ehi = np.concatenate((hi, hi))
    ew = np.concatenate((w, w))
    order = np.lexsort((eseq, ekind, ey))
    ey, ekind, elo, ehi, ew = (
        ey[order], ekind[order], elo[order], ehi[order], ew[order]
    )
    array_out = vector._sweep_events_array(n_slots, ey, ekind, elo, ehi, ew)
    list_out = vector._apply_events_listtree(
        n_slots,
        ey.tolist(),
        ekind.tolist(),
        elo.tolist(),
        ehi.tolist(),
        ew.tolist(),
    )
    assert bool(array_out[0]) == bool(list_out[0])
    if list_out[0]:
        assert float(array_out[1]) == float(list_out[1])
        assert int(array_out[2]) == int(list_out[2])
        assert float(array_out[3]) == float(list_out[3])
        assert float(array_out[4]) == float(list_out[4])
