"""Unit and property tests for the max-cover segment tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment_tree import MaxCoverSegmentTree
from repro.errors import InvalidParameterError


class TestBasics:
    def test_initial_state_is_zero(self):
        tree = MaxCoverSegmentTree(8)
        assert tree.max_value == 0.0
        assert tree.argmax == 0
        assert tree.to_list() == [0.0] * 8

    def test_size_one(self):
        tree = MaxCoverSegmentTree(1)
        tree.add(0, 0, 3.5)
        assert tree.max_value == 3.5
        assert tree.argmax == 0

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            MaxCoverSegmentTree(0)
        with pytest.raises(InvalidParameterError):
            MaxCoverSegmentTree(-3)

    def test_single_range_add(self):
        tree = MaxCoverSegmentTree(6)
        tree.add(1, 3, 2.0)
        assert tree.to_list() == [0, 2, 2, 2, 0, 0]
        assert tree.max_value == 2.0
        assert tree.argmax == 1  # leftmost slot of the max run

    def test_overlapping_adds_stack(self):
        tree = MaxCoverSegmentTree(6)
        tree.add(0, 3, 1.0)
        tree.add(2, 5, 1.0)
        assert tree.to_list() == [1, 1, 2, 2, 1, 1]
        assert tree.max_value == 2.0
        assert tree.argmax == 2

    def test_remove_restores(self):
        tree = MaxCoverSegmentTree(5)
        tree.add(0, 4, 3.0)
        tree.add(1, 2, 2.0)
        tree.add(1, 2, -2.0)
        assert tree.to_list() == [3, 3, 3, 3, 3]
        assert tree.max_value == 3.0

    def test_argmax_leftmost_tie(self):
        tree = MaxCoverSegmentTree(7)
        tree.add(4, 5, 1.0)
        tree.add(1, 2, 1.0)
        assert tree.argmax == 1

    def test_full_range_add(self):
        tree = MaxCoverSegmentTree(10)
        tree.add(0, 9, 5.0)
        assert tree.max_value == 5.0
        assert tree.argmax == 0

    def test_out_of_bounds_rejected(self):
        tree = MaxCoverSegmentTree(4)
        with pytest.raises(InvalidParameterError):
            tree.add(-1, 2, 1.0)
        with pytest.raises(InvalidParameterError):
            tree.add(0, 4, 1.0)
        with pytest.raises(InvalidParameterError):
            tree.add(3, 2, 1.0)

    def test_range_max_query(self):
        tree = MaxCoverSegmentTree(8)
        tree.add(0, 2, 4.0)
        tree.add(5, 7, 6.0)
        value, slot = tree.range_max(0, 3)
        assert value == 4.0 and slot == 0
        value, slot = tree.range_max(3, 7)
        assert value == 6.0 and slot == 5
        value, slot = tree.range_max(3, 4)
        assert value == 0.0

    def test_range_max_bounds_checked(self):
        tree = MaxCoverSegmentTree(4)
        with pytest.raises(InvalidParameterError):
            tree.range_max(0, 9)

    def test_negative_weights_supported(self):
        tree = MaxCoverSegmentTree(4)
        tree.add(0, 3, -2.0)
        tree.add(1, 1, 5.0)
        assert tree.max_value == 3.0
        assert tree.argmax == 1


class _NaiveArray:
    """Reference implementation: plain array with linear scans."""

    def __init__(self, size: int) -> None:
        self.values = [0.0] * size

    def add(self, lo: int, hi: int, delta: float) -> None:
        for i in range(lo, hi + 1):
            self.values[i] += delta

    def range_max(self, lo: int, hi: int) -> tuple[float, int]:
        best, arg = float("-inf"), lo
        for i in range(lo, hi + 1):
            if self.values[i] > best:
                best, arg = self.values[i], i
        return best, arg


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    ops=st.integers(min_value=1, max_value=80),
)
def test_matches_naive_reference(size: int, seed: int, ops: int):
    """Random interleavings of adds and queries agree with a plain array."""
    rng = random.Random(seed)
    tree = MaxCoverSegmentTree(size)
    ref = _NaiveArray(size)
    for _ in range(ops):
        lo = rng.randrange(size)
        hi = rng.randrange(lo, size)
        delta = rng.choice([-3.0, -1.0, 0.5, 1.0, 2.5])
        tree.add(lo, hi, delta)
        ref.add(lo, hi, delta)
        qlo = rng.randrange(size)
        qhi = rng.randrange(qlo, size)
        tval, targ = tree.range_max(qlo, qhi)
        rval, rarg = ref.range_max(qlo, qhi)
        assert tval == pytest.approx(rval)
        assert ref.values[targ] == pytest.approx(rval)
        assert tree.max_value == pytest.approx(max(ref.values))
        assert ref.values[tree.argmax] == pytest.approx(max(ref.values))


@settings(max_examples=30, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_insert_then_remove_cancels(size: int, seed: int):
    """Adding then subtracting the same intervals returns to all-zero."""
    rng = random.Random(seed)
    tree = MaxCoverSegmentTree(size)
    intervals = []
    for _ in range(10):
        lo = rng.randrange(size)
        hi = rng.randrange(lo, size)
        w = rng.uniform(0.5, 5.0)
        intervals.append((lo, hi, w))
        tree.add(lo, hi, w)
    for lo, hi, w in intervals:
        tree.add(lo, hi, -w)
    assert tree.max_value == pytest.approx(0.0, abs=1e-9)
    assert all(abs(v) < 1e-9 for v in tree.to_list())


class TestReset:
    def test_reset_clears_state(self):
        tree = MaxCoverSegmentTree(8)
        tree.add(2, 6, 4.0)
        tree.reset(8)
        assert tree.max_value == 0.0
        assert tree.argmax == 0
        assert tree.to_list() == [0.0] * 8

    def test_reset_shrink_reuses_arrays(self):
        tree = MaxCoverSegmentTree(32)
        tree.add(0, 31, 1.0)
        backing = tree._mx
        tree.reset(5)
        assert tree._mx is backing  # no reallocation on shrink
        assert tree.size == 5
        assert tree.to_list() == [0.0] * 5
        tree.add(1, 3, 2.0)
        assert (tree.max_value, tree.argmax) == (2.0, 1)

    def test_reset_grow_reallocates(self):
        tree = MaxCoverSegmentTree(4)
        tree.reset(64)
        assert tree.size == 64
        tree.add(60, 63, 7.0)
        assert (tree.max_value, tree.argmax) == (7.0, 60)

    def test_reset_invalid_size(self):
        tree = MaxCoverSegmentTree(4)
        with pytest.raises(InvalidParameterError):
            tree.reset(0)

    def test_stale_state_cannot_leak_after_shrink(self):
        tree = MaxCoverSegmentTree(16)
        tree.add(10, 15, 100.0)  # only slots outside the shrunken range
        tree.reset(3)
        assert tree.max_value == 0.0
        tree.add(0, 0, 1.0)
        assert (tree.max_value, tree.argmax) == (1.0, 0)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=25), min_size=2, max_size=5
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_reset_reuse_matches_fresh_tree(sizes: list[int], seed: int):
    """One pooled tree driven through reset() phases behaves exactly
    like a freshly constructed tree of each phase's size."""
    rng = random.Random(seed)
    pooled = MaxCoverSegmentTree(sizes[0])
    for phase, size in enumerate(sizes):
        if phase:
            pooled.reset(size)
        fresh = MaxCoverSegmentTree(size)
        ref = _NaiveArray(size)
        for _ in range(rng.randrange(1, 12)):
            lo = rng.randrange(size)
            hi = rng.randrange(lo, size)
            delta = rng.choice([-2.0, -0.5, 1.0, 3.0])
            for t in (pooled, fresh):
                t.add(lo, hi, delta)
            ref.add(lo, hi, delta)
        # pooled and fresh saw identical op sequences: results must be
        # bit-identical, not merely approximately equal
        assert pooled.peek() == fresh.peek()
        assert pooled.to_list() == fresh.to_list()
        qlo = rng.randrange(size)
        qhi = rng.randrange(qlo, size)
        assert pooled.range_max(qlo, qhi) == fresh.range_max(qlo, qhi)
        rval, _rarg = ref.range_max(qlo, qhi)
        assert pooled.range_max(qlo, qhi)[0] == pytest.approx(rval)
        assert pooled.max_value == pytest.approx(max(ref.values))
