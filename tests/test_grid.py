"""Unit and property tests for the uniform grid mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.core.grid import UniformGrid, default_cell_size
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_cell_size_validation(self):
        with pytest.raises(InvalidParameterError):
            UniformGrid(cell_size=0)
        with pytest.raises(InvalidParameterError):
            UniformGrid(cell_size=-1)

    def test_default_cell_size(self):
        assert default_cell_size(100, 50) == 200.0
        assert default_cell_size(10, 400) == 800.0


class TestCellMath:
    def test_cell_of_point(self):
        g = UniformGrid(cell_size=10.0)
        assert g.cell_of_point(0.0, 0.0) == (0, 0)
        assert g.cell_of_point(15.0, 25.0) == (1, 2)
        assert g.cell_of_point(-0.1, 0.0) == (-1, 0)

    def test_cell_bounds_roundtrip(self):
        g = UniformGrid(cell_size=10.0, origin_x=5.0, origin_y=-5.0)
        bounds = g.cell_bounds((2, -1))
        assert bounds == Rect(25.0, -15.0, 35.0, -5.0)

    def test_rect_within_one_cell(self):
        g = UniformGrid(cell_size=10.0)
        keys = list(g.cells_overlapping(Rect(1, 1, 4, 4)))
        assert keys == [(0, 0)]

    def test_rect_spanning_four_cells(self):
        g = UniformGrid(cell_size=10.0)
        keys = set(g.cells_overlapping(Rect(8, 8, 12, 12)))
        assert keys == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_rect_on_boundary_maps_one_side(self):
        g = UniformGrid(cell_size=10.0)
        # rect exactly [10,20]x[0,10]: interior lies in cell (1,0) only
        keys = set(g.cells_overlapping(Rect(10, 0, 20, 10)))
        assert keys == {(1, 0)}

    def test_degenerate_rect_maps_nowhere(self):
        g = UniformGrid(cell_size=10.0)
        assert list(g.cells_overlapping(Rect(3, 0, 3, 9))) == []

    def test_large_rect_covers_block(self):
        g = UniformGrid(cell_size=5.0)
        keys = set(g.cells_overlapping(Rect(0, 0, 20, 10)))
        assert keys == {(i, j) for i in range(4) for j in range(2)}

    def test_negative_coordinates(self):
        g = UniformGrid(cell_size=10.0)
        keys = set(g.cells_overlapping(Rect(-15, -5, -2, 5)))
        assert keys == {(-2, -1), (-1, -1), (-2, 0), (-1, 0)}

    def test_cell_count_for(self):
        g = UniformGrid(cell_size=10.0)
        assert g.cell_count_for(Rect(0, 0, 25, 15)) == 3 * 2


coord = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
size = st.floats(min_value=0.01, max_value=500.0)


@st.composite
def rects(draw):
    x1 = draw(coord)
    y1 = draw(coord)
    return Rect(x1, y1, x1 + draw(size), y1 + draw(size))


@settings(max_examples=200, deadline=None)
@given(rect=rects(), cell_size=st.floats(min_value=0.5, max_value=300.0))
def test_mapped_cells_actually_overlap(rect: Rect, cell_size: float):
    """Every mapped cell genuinely overlaps the rectangle, and the map
    is exactly the set of overlapping cells (no misses around
    boundaries/float edges)."""
    g = UniformGrid(cell_size=cell_size)
    keys = set(g.cells_overlapping(rect))
    for key in keys:
        assert g.cell_bounds(key).overlaps(rect)
    # completeness: check the neighbourhood ring around the mapped block
    if keys:
        i_values = [k[0] for k in keys]
        j_values = [k[1] for k in keys]
        for i in range(min(i_values) - 1, max(i_values) + 2):
            for j in range(min(j_values) - 1, max(j_values) + 2):
                expected = g.cell_bounds((i, j)).overlaps(rect)
                assert ((i, j) in keys) == expected


@settings(max_examples=200, deadline=None)
@given(a=rects(), b=rects(), cell_size=st.floats(min_value=0.5, max_value=300.0))
def test_overlapping_rects_share_a_cell(a: Rect, b: Rect, cell_size: float):
    """The G2 correctness precondition: any two overlapping rectangles
    are mapped to at least one common cell."""
    if not a.overlaps(b):
        return
    g = UniformGrid(cell_size=cell_size)
    assert set(g.cells_overlapping(a)) & set(g.cells_overlapping(b))


class TestCellKeysCache:
    """``cell_keys`` is the cached, tuple-returning form of
    ``cells_overlapping`` shared by every grid-backed monitor."""

    def test_matches_cells_overlapping(self):
        g = UniformGrid(cell_size=10.0)
        rect = Rect(3.0, 7.0, 26.0, 12.0)
        assert list(g.cells_overlapping(rect)) == list(g.cell_keys(rect))

    def test_degenerate_rect_maps_nowhere(self):
        g = UniformGrid(cell_size=10.0)
        assert g.cell_keys(Rect(5.0, 5.0, 5.0, 5.0)) == ()

    def test_cache_shared_across_equal_grids(self):
        a = UniformGrid(cell_size=10.0)
        b = UniformGrid(cell_size=10.0)
        rect = Rect(1.0, 1.0, 25.0, 25.0)
        # same geometry -> same cached tuple object, even across
        # distinct UniformGrid instances (the cache keys on geometry)
        assert a.cell_keys(rect) is b.cell_keys(rect)

    def test_distinct_geometry_distinct_entries(self):
        a = UniformGrid(cell_size=10.0)
        b = UniformGrid(cell_size=10.0, origin_x=5.0)
        rect = Rect(1.0, 1.0, 9.0, 9.0)
        assert a.cell_keys(rect) != b.cell_keys(rect)
