"""DeadlineController hysteresis and the AdaptiveMonitor ladder."""

from __future__ import annotations

import pytest

from conftest import make_objects
from repro.errors import InvalidParameterError
from repro.obs import Metrics
from repro.overload import (
    AdaptiveMonitor,
    BreakerState,
    CircuitBreaker,
    DeadlineController,
    LadderDecision,
)
from repro.overload.harness import exact_weight_over
from repro.window import CountWindow


def controller(**kwargs) -> DeadlineController:
    """Deterministic controller: alpha=1 makes the EWMA the last sample."""
    defaults = dict(
        budget_ms=10.0,
        alpha=1.0,
        high_fraction=0.9,
        low_fraction=0.5,
        escalate_after=2,
        deescalate_after=2,
        min_residency=0,
        panic_factor=3.0,
    )
    defaults.update(kwargs)
    return DeadlineController(**defaults)


class TestControllerValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget_ms": 0.0},
            {"low_fraction": 0.9, "high_fraction": 0.9},
            {"low_fraction": 0.0},
            {"high_fraction": 1.2},
            {"escalate_after": 0},
            {"deescalate_after": 0},
            {"min_residency": -1},
            {"panic_factor": 1.0},
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            controller(**kwargs)

    def test_set_budget_validated(self):
        ctl = controller()
        with pytest.raises(InvalidParameterError):
            ctl.set_budget(0.0)
        ctl.set_budget(25.0)
        assert ctl.budget_ms == 25.0


class TestControllerDecisions:
    def test_escalates_after_consecutive_watermark_breaches(self):
        ctl = controller()  # watermark at 9, budget 10
        assert ctl.observe(9.5) is LadderDecision.HOLD
        assert ctl.observe(9.5) is LadderDecision.ESCALATE

    def test_escalation_is_never_delayed_by_residency(self):
        ctl = controller(min_residency=100)
        ctl.observe(9.5)
        assert ctl.observe(9.5) is LadderDecision.ESCALATE

    def test_success_in_dead_band_resets_the_streak(self):
        ctl = controller()
        ctl.observe(9.5)  # one breach
        assert ctl.observe(7.0) is LadderDecision.HOLD  # dead band: reset
        assert ctl.observe(9.5) is LadderDecision.HOLD  # streak starts over

    def test_panic_on_single_catastrophic_sample(self):
        ctl = controller()
        assert ctl.observe(31.0) is LadderDecision.PANIC  # > 3 x budget

    def test_escalation_upgraded_to_panic_when_sample_over_full_budget(self):
        # EWMA pressure plus a raw sample past the budget (but short of
        # panic_factor x budget): a one-rung step would burn one
        # over-budget sample per rung, so the controller jumps.
        ctl = controller()
        assert ctl.observe(15.0) is LadderDecision.HOLD
        assert ctl.observe(15.0) is LadderDecision.PANIC

    def test_deescalates_after_clears_and_residency(self):
        ctl = controller(deescalate_after=2, min_residency=3)
        assert ctl.observe(1.0) is LadderDecision.HOLD
        assert ctl.observe(1.0) is LadderDecision.HOLD  # residency 2 < 3
        assert ctl.observe(1.0) is LadderDecision.DEESCALATE

    def test_note_transition_restarts_counters(self):
        ctl = controller(deescalate_after=2)
        ctl.observe(1.0)
        ctl.observe(1.0)
        ctl.note_transition()
        assert ctl.observe(1.0) is LadderDecision.HOLD  # clears restart

    def test_ewma_mirrored_into_metrics(self):
        metrics = Metrics("ctl")
        ctl = controller(alpha=0.5, metrics=metrics)
        ctl.observe(10.0)
        ctl.observe(20.0)
        assert metrics.snapshot().gauges["latency_ewma_ms"] == 15.0
        assert ctl.latency_ewma_ms == 15.0


# -- AdaptiveMonitor ---------------------------------------------------------


def make_adaptive(**kwargs) -> AdaptiveMonitor:
    defaults = dict(budget_ms=10_000.0, epsilon_schedule=(0.2, 0.4), seed=3)
    defaults.update(kwargs)
    return AdaptiveMonitor(
        20.0, 20.0, lambda: CountWindow(300), **defaults
    )


class TestAdaptiveValidation:
    @pytest.mark.parametrize(
        "schedule", [(), (0.0,), (1.0,), (1.5,), (0.4, 0.2), (0.2, 0.2)]
    )
    def test_bad_epsilon_schedule_rejected(self, schedule):
        with pytest.raises(InvalidParameterError):
            make_adaptive(epsilon_schedule=schedule)

    def test_mode_names_span_the_ladder(self):
        adaptive = make_adaptive()
        assert adaptive.mode_names == (
            "exact",
            "approx(0.2)",
            "approx(0.4)",
            "sampling",
        )
        assert adaptive.sampling_rung == 3


class TestAdaptiveServing:
    def test_exact_result_carries_the_contract(self):
        adaptive = make_adaptive()
        result = adaptive.update(make_objects(60))
        assert result.mode == "exact"
        assert result.guarantee == 1.0
        assert result.stale_for == 0
        exact = exact_weight_over(adaptive.window.contents, 20.0)
        assert result.best_weight == pytest.approx(exact)

    def test_guarantee_per_rung(self):
        adaptive = make_adaptive()
        floors = []
        for rung in range(adaptive.sampling_rung + 1):
            adaptive._transition(rung, "test")
            floors.append(adaptive.guarantee)
        assert floors == [1.0, pytest.approx(0.8), pytest.approx(0.6), 0.0]

    def test_ingest_primes_every_warm_rung(self):
        adaptive = make_adaptive()
        adaptive.ingest(make_objects(40))
        assert len(adaptive.window.contents) == 40
        assert len(adaptive._ag2_core().window.contents) == 40

    def test_approx_rung_honours_its_floor(self):
        adaptive = make_adaptive()
        adaptive.ingest(make_objects(80))
        adaptive._transition(1, "test")  # approx(0.2)
        for step in range(1, 6):
            result = adaptive.update(make_objects(20, seed=step))
            exact = exact_weight_over(adaptive.window.contents, 20.0)
            assert result.mode == "approx"
            assert result.guarantee == pytest.approx(0.8)
            assert result.best_weight >= 0.8 * exact - 1e-9

    def test_dialing_epsilon_keeps_the_same_index(self):
        adaptive = make_adaptive()
        adaptive.update(make_objects(50))
        index_before = adaptive._ag2
        adaptive._transition(1, "test")
        assert adaptive._ag2 is index_before  # no rebuild, just a dial
        assert adaptive._ag2_core().epsilon == pytest.approx(0.2)
        assert adaptive.rebuilds == 0


class TestLadderWalk:
    def test_panic_drops_straight_to_sampling(self):
        adaptive = make_adaptive(
            controller=controller(budget_ms=1e-7)  # everything panics
        )
        adaptive.ingest(make_objects(60))
        adaptive.update(make_objects(10, seed=1))
        assert adaptive.mode == "sampling"
        assert adaptive.transitions[-1]["reason"] == "panic"
        result = adaptive.update(make_objects(10, seed=2))
        assert result.mode == "sampling"
        assert result.guarantee == 0.0

    def test_recovery_steps_down_and_rebuilds_in_slack(self):
        adaptive = make_adaptive(
            controller=controller(
                budget_ms=10_000.0, deescalate_after=1, min_residency=0
            )
        )
        adaptive.ingest(make_objects(60))
        adaptive._transition(adaptive.sampling_rung, "test")
        adaptive.update(make_objects(10, seed=1))  # cheap -> DEESCALATE
        assert adaptive.rung == adaptive.sampling_rung - 1
        assert adaptive.transitions[-1]["reason"] == "headroom"
        assert adaptive._ag2_stale  # rebuild is deferred, not eager
        adaptive.note_pressure(0)  # slack: pay the rebuild here
        assert not adaptive._ag2_stale
        assert adaptive.rebuilds == 1
        assert len(adaptive._ag2_core().window.contents) == len(
            adaptive.window.contents
        )

    def test_stale_rebuild_falls_back_to_update_when_no_slack(self):
        adaptive = make_adaptive(
            controller=controller(
                budget_ms=10_000.0, deescalate_after=1, min_residency=0
            )
        )
        adaptive.ingest(make_objects(60))
        adaptive._transition(adaptive.sampling_rung, "test")
        adaptive.update(make_objects(10, seed=1))  # leaves sampling, stale
        result = adaptive.update(make_objects(10, seed=2))  # forces rebuild
        assert adaptive.rebuilds == 1
        assert not adaptive._ag2_stale
        assert result.mode in ("exact", "approx")

    def test_backlog_defers_recovery(self):
        adaptive = make_adaptive(
            controller=controller(
                budget_ms=10_000.0, deescalate_after=1, min_residency=0
            )
        )
        adaptive.ingest(make_objects(60))
        adaptive._transition(adaptive.sampling_rung, "test")
        adaptive.note_pressure(5)  # queue still draining
        adaptive.update(make_objects(10, seed=1))
        assert adaptive.rung == adaptive.sampling_rung  # held cheap
        assert adaptive.deescalations_deferred == 1
        adaptive.note_pressure(0)
        adaptive.update(make_objects(10, seed=2))
        assert adaptive.rung == adaptive.sampling_rung - 1

    def test_no_rebuild_in_slack_while_breaker_open(self):
        breaker = CircuitBreaker(trip_after=1, cooldown=100)
        adaptive = make_adaptive(breaker=breaker)
        adaptive.ingest(make_objects(40))
        adaptive._transition(adaptive.sampling_rung, "test")
        adaptive._transition(1, "test")  # back on an aG2 rung, index stale
        breaker.record_update(over_deadline=True)  # trips OPEN
        assert breaker.state is BreakerState.OPEN
        adaptive.note_pressure(0)
        assert adaptive._ag2_stale  # rebuild withheld: breaker would skip it
        assert adaptive.rebuilds == 0


class TestBreakerIntegration:
    def test_open_breaker_serves_stale_with_warm_window(self):
        adaptive = make_adaptive(
            controller=controller(budget_ms=1e-7),  # every update breaches
            breaker=CircuitBreaker(trip_after=1, cooldown=100),
        )
        adaptive.ingest(make_objects(60))
        served = adaptive.update(make_objects(10, seed=1))  # trips breaker
        assert adaptive.breaker.state is BreakerState.OPEN
        assert adaptive.transitions[-1]["reason"] == "breaker_trip"
        before = len(adaptive.window.contents)
        stale_one = adaptive.update(make_objects(10, seed=2))
        stale_two = adaptive.update(make_objects(10, seed=3))
        assert stale_one.stale_for == 1
        assert stale_two.stale_for == 2
        assert stale_two.best_weight == served.best_weight  # held answer
        assert len(adaptive.window.contents) > before  # window stayed warm
        assert adaptive.stale_residency == 2

    def test_summary_shape(self):
        adaptive = make_adaptive()
        adaptive.update(make_objects(30))
        summary = adaptive.overload_summary()
        assert summary["mode"] == "exact"
        assert summary["rung"] == 0
        assert summary["guarantee"] == 1.0
        assert summary["breaker_state"] == "closed"
        assert summary["transitions"] == []
        assert summary["residency"]["exact"] == 1
        assert set(summary) >= {
            "budget_ms",
            "latency_ewma_ms",
            "stale_served",
            "breaker_trips",
            "rebuilds",
            "deescalations_deferred",
        }
