"""Ablation: grid (G2) vs R-tree neighbour indexing under stream churn.

The paper's §4.1 justifies the grid with a citation: *"When dataset
updates frequently occur, grid structure is more suitable than complex
structures like R-tree and Quad-tree [4]."*  This benchmark reproduces
the claim: the same incremental graph monitor runs once over the grid
(G2) and once over a dynamic R-tree (insert + condense-delete per
object), at increasing churn rates.  The R-tree's per-object delete
cascade is what falls behind as ``m`` grows.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig
from repro.core.rtree_monitor import RTreeMonitor
from repro.datasets import make_stream
from repro.window import CountWindow

RATES = (50, 200, 1000)

BASE = ExperimentConfig(
    dataset="synthetic",
    window_size=4_000,
    batch_size=100,
    rect_side=1000.0,
    domain=140_000.0,
    seed=42,
)


def _rtree_steady(cfg: ExperimentConfig):
    monitor = RTreeMonitor(
        cfg.rect_side, cfg.rect_side, CountWindow(cfg.window_size)
    )
    stream = iter(make_stream(cfg.dataset, domain=cfg.domain, seed=cfg.seed))

    def take(count):
        out = []
        for obj in stream:
            out.append(obj)
            if len(out) >= count:
                break
        return out

    remaining = cfg.window_size
    while remaining > 0:
        chunk = take(min(1000, remaining))
        if not chunk:
            break
        monitor.ingest(chunk)
        remaining -= len(chunk)

    def arrival_batches():
        while True:
            yield take(cfg.batch_size)

    return monitor, arrival_batches()


@pytest.mark.parametrize("rate", RATES)
@pytest.mark.parametrize("index", ("grid", "rtree"))
def test_ablation_grid_vs_rtree(benchmark, rate, index):
    benchmark.group = f"ablation: grid vs rtree m={rate} [synthetic]"
    benchmark.extra_info.update(
        {"ablation": "grid_vs_rtree", "index": index, "m": rate}
    )
    cfg = BASE.with_(batch_size=rate)
    if index == "grid":
        monitor, batches = steady_state(cfg, "g2")
    else:
        monitor, batches = _rtree_steady(cfg)
    measure_updates(benchmark, monitor, batches)
