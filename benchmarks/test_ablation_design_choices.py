"""Design-choice ablations called out in DESIGN.md §5.

Three knobs the paper leaves open (or that we added deliberately):

* **Cell size** — the paper fixes the grid resolution without
  prescribing it; too-fine grids multiply vertex copies, too-coarse
  grids destroy pruning locality.  Our default is twice the query side.
* **Visit order** — we visit candidate cells in decreasing ``c.w`` so
  the first Rule-1 failure prunes the rest; ``arbitrary`` is the
  paper's literal reading (each cell tested on its own).
* **Sampling comparator** — repeated one-time computation of the
  [25]-style sampled solver, the approximation alternative §7.4 argues
  against; compare with the ε-approximate aG2 monitor.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig
from repro.core.sampling import SamplingMonitor
from repro.datasets import make_stream
from repro.window import CountWindow

CFG = ExperimentConfig(
    dataset="roma_like",
    window_size=3_000,
    batch_size=100,
    rect_side=1000.0,
    domain=140_000.0,
    seed=42,
)

#: grid resolution as a multiple of the query rectangle side
CELL_FACTORS = (1.0, 2.0, 4.0, 8.0)


@pytest.mark.parametrize("factor", CELL_FACTORS)
def test_ablation_cell_size(benchmark, factor):
    benchmark.group = "ablation: grid cell size [roma_like]"
    benchmark.extra_info.update(
        {"ablation": "cell_size", "factor": factor}
    )
    cfg = CFG.with_(cell_size=factor * CFG.rect_side)
    monitor, batches = steady_state(cfg, "ag2")
    measure_updates(benchmark, monitor, batches)


@pytest.mark.parametrize("order", ("bound", "arbitrary"))
def test_ablation_visit_order(benchmark, order):
    benchmark.group = "ablation: cell visit order [roma_like]"
    benchmark.extra_info.update({"ablation": "visit_order", "order": order})
    monitor, batches = steady_state(CFG, "ag2")
    monitor.visit_order = order  # only affects the timed B&B passes
    measure_updates(benchmark, monitor, batches)


@pytest.mark.parametrize("algorithm", ("approx_ag2", "sampling"))
def test_ablation_approximation_strategy(benchmark, algorithm):
    """ε = 0.2 head-to-head: incremental aG2 approximation vs repeated
    one-time sampled computation (the [25] pattern)."""
    benchmark.group = "ablation: approximation strategy [roma_like]"
    benchmark.extra_info.update(
        {"ablation": "approx_strategy", "algorithm": algorithm}
    )
    if algorithm == "approx_ag2":
        monitor, batches = steady_state(CFG.with_(epsilon=0.2), "ag2")
    else:
        monitor = SamplingMonitor(
            CFG.rect_side,
            CFG.rect_side,
            CountWindow(CFG.window_size),
            epsilon=0.2,
            seed=CFG.seed,
        )
        stream = iter(
            make_stream(CFG.dataset, domain=CFG.domain, seed=CFG.seed)
        )

        def take(count):
            out = []
            for obj in stream:
                out.append(obj)
                if len(out) >= count:
                    break
            return out

        monitor.ingest(take(CFG.window_size))

        def arrival_batches():
            while True:
                yield take(CFG.batch_size)

        batches = arrival_batches()
    measure_updates(benchmark, monitor, batches)
