"""Table 5 — Algorithm 5 upper-bound tightening ablation.

Paper shape: Algorithm 5 (always or cost-gated) gives no robust
improvement over plain Algorithm 2 and hurts on the dataset with large
``R(ri)`` sets (Geolife) — the reason the paper ships aG2 without it.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig

MODES = ("off", "conditional", "always")  # off == plain Algorithm 2
DATASETS = ("synthetic", "tdrive_like", "geolife_like", "roma_like")


def cfg_for(dataset: str) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=dataset,
        window_size=3_000,
        batch_size=100,
        rect_side=1000.0,
        domain=140_000.0,
        seed=42,
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_table5_update_time(benchmark, dataset, mode):
    benchmark.group = f"table5 [{dataset}]"
    benchmark.extra_info.update(
        {"table": "5", "dataset": dataset, "algorithm5": mode}
    )
    monitor, batches = steady_state(cfg_for(dataset), "ag2", tighten_mode=mode)
    measure_updates(benchmark, monitor, batches)
