"""Shared machinery for the paper-reproduction benchmarks.

Each ``benchmarks/test_*.py`` file regenerates one artefact of the
paper's §7 (Table 5, Figures 7–11).  The pytest-benchmark suite runs a
*reduced* grid so it completes in minutes on a laptop; the full scaled
grids (DESIGN.md §4) live in ``benchmarks/run_experiments.py``, which
regenerates the EXPERIMENTS.md measurement blocks.

Protocol per benchmark: build the monitor, prime the window to capacity
(untimed), then measure ``monitor.update(batch)`` on successive arrival
batches — the paper's "average computation time to update s*".
"""

from __future__ import annotations

from typing import Iterator

from repro.bench import ExperimentConfig, build_monitor
from repro.core.monitor import MaxRSMonitor
from repro.core.objects import SpatialObject
from repro.datasets import make_stream

__all__ = ["steady_state", "measure_updates"]


def steady_state(
    cfg: ExperimentConfig, algorithm: str, tighten_mode: str = "off"
) -> tuple[MaxRSMonitor, Iterator[list[SpatialObject]]]:
    """A monitor primed to a full window plus its arrival-batch iterator."""
    monitor = build_monitor(algorithm, cfg, tighten_mode=tighten_mode)
    stream = iter(make_stream(cfg.dataset, domain=cfg.domain, seed=cfg.seed))

    def take(count: int) -> list[SpatialObject]:
        batch = []
        for obj in stream:
            batch.append(obj)
            if len(batch) >= count:
                break
        return batch

    remaining = cfg.window_size
    while remaining > 0:
        chunk = take(min(1000, remaining))
        if not chunk:
            break
        monitor.ingest(chunk)
        remaining -= len(chunk)

    def arrival_batches() -> Iterator[list[SpatialObject]]:
        while True:
            yield take(cfg.batch_size)

    return monitor, arrival_batches()


def measure_updates(benchmark, monitor, batches, rounds: int = 3) -> None:
    """Benchmark one steady-state update per round, fresh batch each time."""

    def setup():
        return (next(batches),), {}

    def update(batch):
        return monitor.update(batch)

    result = benchmark.pedantic(
        update, setup=setup, rounds=rounds, warmup_rounds=1
    )
    assert result is not None
    assert not result.is_empty
