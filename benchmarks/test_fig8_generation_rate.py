"""Figure 8 — impact of generation rate ``m``.

Paper shape: naive is flat in ``m`` (it recomputes from scratch
regardless); the incremental algorithms' cost grows with ``m`` but aG2
stays below naive even at ``m = 1000``.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig

RATES = (50, 100, 200, 500, 1000)
DATASETS = ("synthetic", "tdrive_like", "roma_like")
ALGORITHMS = ("naive", "g2", "ag2")


def cfg_for(dataset: str, rate: int) -> ExperimentConfig:
    window = 2_000 if dataset == "roma_like" else 4_000
    return ExperimentConfig(
        dataset=dataset,
        window_size=window,
        batch_size=rate,
        rect_side=1000.0,
        domain=140_000.0,
        seed=42,
    )


@pytest.mark.parametrize("rate", RATES)
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_update_time(benchmark, dataset, rate, algorithm):
    benchmark.group = f"fig8 m={rate} [{dataset}]"
    benchmark.extra_info.update(
        {"figure": "8", "dataset": dataset, "m": rate, "algorithm": algorithm}
    )
    monitor, batches = steady_state(cfg_for(dataset, rate), algorithm)
    measure_updates(benchmark, monitor, batches)
