"""Micro-benchmarks of the substrate hot paths.

Not a paper artefact — these guard the constants everything else is
built from: segment-tree updates, the one-shot sweep, the clipped
local sweep at realistic neighbour counts, and grid cell mapping.
A regression here silently inflates every figure, so track it here.
"""

from __future__ import annotations

import random

import pytest

from repro.core.grid import UniformGrid
from repro.core.objects import SpatialObject, WeightedRect
from repro.core.planesweep import local_plane_sweep, plane_sweep_max
from repro.core.segment_tree import MaxCoverSegmentTree


def _rects(count: int, domain: float, side: float, seed: int) -> list[WeightedRect]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        obj = SpatialObject(
            x=rng.uniform(0, domain),
            y=rng.uniform(0, domain),
            weight=rng.uniform(0, 10),
        )
        out.append(WeightedRect.from_object(obj, side, side))
    return out


@pytest.mark.parametrize("size", (256, 4096))
def test_micro_segment_tree_update(benchmark, size):
    benchmark.group = f"micro: segment tree add+max (size={size})"
    tree = MaxCoverSegmentTree(size)
    rng = random.Random(7)
    spans = [
        (lo, rng.randrange(lo, size))
        for lo in (rng.randrange(size) for _ in range(512))
    ]

    def run():
        for lo, hi in spans:
            tree.add(lo, hi, 1.0)
        top = tree.max_value
        for lo, hi in spans:
            tree.add(lo, hi, -1.0)
        return top

    result = benchmark(run)
    assert result > 0


@pytest.mark.parametrize("count", (500, 2000))
def test_micro_full_sweep(benchmark, count):
    benchmark.group = f"micro: one-shot plane sweep (n={count})"
    rects = _rects(count, domain=50_000.0, side=1000.0, seed=1)
    region = benchmark(plane_sweep_max, rects)
    assert region is not None


@pytest.mark.parametrize("degree", (4, 32, 128))
def test_micro_local_sweep(benchmark, degree):
    """Local-Plane-Sweep at the neighbour counts the monitors see:
    sparse uniform (~4), busy hotspot (~32), extreme skew (~128)."""
    benchmark.group = f"micro: local sweep (|N(ri)|={degree})"
    anchor = _rects(1, domain=100.0, side=1000.0, seed=2)[0]
    rng = random.Random(3)
    neighbors = []
    for _ in range(degree):
        obj = SpatialObject(
            x=anchor.obj.x + rng.uniform(-900, 900),
            y=anchor.obj.y + rng.uniform(-900, 900),
            weight=rng.uniform(0, 10),
        )
        neighbors.append(WeightedRect.from_object(obj, 1000.0, 1000.0))
    region = benchmark(local_plane_sweep, anchor, neighbors)
    assert region.weight >= anchor.weight


def test_micro_grid_mapping(benchmark):
    benchmark.group = "micro: grid cell mapping (1000 rects)"
    grid = UniformGrid(cell_size=2000.0)
    rects = _rects(1000, domain=140_000.0, side=1000.0, seed=4)

    def run():
        return sum(
            1 for wr in rects for _ in grid.cells_overlapping(wr.rect)
        )

    mapped = benchmark(run)
    assert mapped >= 1000
