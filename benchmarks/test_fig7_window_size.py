"""Figure 7 — impact of window size ``n``.

Paper shape: every algorithm slows as ``n`` grows; naive plane-sweep is
worst and least scalable, aG2 beats G2 (both beat naive) on every
dataset.  The reduced pytest grid covers the uniform and the hardest
(Geolife-like) workloads; ``run_experiments.py`` sweeps the full
scaled grid over all four datasets.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig

WINDOWS = (1_000, 2_000, 4_000, 8_000)
#: heavy skewed workloads sweep a 4x smaller grid (same structure) so
#: G2's giant local sweeps stay tractable in pure Python
HEAVY = {"geolife_like", "roma_like"}
DATASETS = ("synthetic", "tdrive_like", "roma_like", "geolife_like")
ALGORITHMS = ("naive", "g2", "ag2")


def cfg_for(dataset: str, window: int) -> ExperimentConfig:
    if dataset in HEAVY:
        window = max(500, window // 4)
    return ExperimentConfig(
        dataset=dataset,
        window_size=window,
        batch_size=100,
        rect_side=1000.0,
        domain=140_000.0,
        seed=42,
    )


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7_update_time(benchmark, dataset, window, algorithm):
    benchmark.group = f"fig7 n={window} [{dataset}]"
    benchmark.extra_info.update(
        {"figure": "7", "dataset": dataset, "n": window, "algorithm": algorithm}
    )
    monitor, batches = steady_state(cfg_for(dataset, window), algorithm)
    measure_updates(benchmark, monitor, batches)
