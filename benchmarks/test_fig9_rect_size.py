"""Figure 9 — impact of the query rectangle side ``l``.

Paper shape: larger rectangles mean more overlaps; uniform data is
barely affected while skewed datasets slow down markedly, with aG2
staying ahead of naive throughout.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig

SIDES = (100.0, 500.0, 1000.0, 1500.0, 2000.0)
DATASETS = ("synthetic", "tdrive_like", "roma_like")
ALGORITHMS = ("naive", "g2", "ag2")


def cfg_for(dataset: str, side: float) -> ExperimentConfig:
    window = 2_000 if dataset == "roma_like" else 4_000
    return ExperimentConfig(
        dataset=dataset,
        window_size=window,
        batch_size=100,
        rect_side=side,
        domain=140_000.0,
        seed=42,
    )


@pytest.mark.parametrize("side", SIDES)
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_update_time(benchmark, dataset, side, algorithm):
    benchmark.group = f"fig9 l={side:g} [{dataset}]"
    benchmark.extra_info.update(
        {"figure": "9", "dataset": dataset, "l": side, "algorithm": algorithm}
    )
    monitor, batches = steady_state(cfg_for(dataset, side), algorithm)
    measure_updates(benchmark, monitor, batches)
