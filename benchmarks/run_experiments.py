#!/usr/bin/env python3
"""Full experiment harness: regenerate every table and figure (§7).

Runs the complete scaled parameter grids of DESIGN.md §4 over all four
workloads and prints the rows/series the paper reports — Table 5 and
Figures 7, 8, 9, 10, 11.  Output is valid Markdown; redirect it into
EXPERIMENTS.md's measurement section::

    python benchmarks/run_experiments.py               # full grids (slow)
    python benchmarks/run_experiments.py --quick       # reduced grids
    python benchmarks/run_experiments.py --only fig7 fig10

Pure-Python absolute numbers are ~50-100x the paper's C++ values; the
comparisons that matter are the *shapes*: who wins, by what factor, and
how each curve bends (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import (
    FIG7_WINDOWS,
    FIG8_RATES,
    FIG9_SIDES,
    FIG10_EPSILONS,
    FIG11_KS,
    PAPER_DATASETS,
    ExperimentConfig,
    format_rows,
    run_ablation,
    run_approx_sweep,
    run_sweep,
    run_topk_sweep,
)

FULL = ExperimentConfig(
    window_size=10_000, batch_size=100, rect_side=1000.0,
    domain=140_000.0, batches=3, seed=42,
)
QUICK = FULL.with_(window_size=2_000, batches=2)

# per-experiment dataset lists: the heavy skewed workloads get smaller
# windows in full mode so G2 stays tractable in pure Python
HEAVY = {"geolife_like", "roma_like"}


def _cfg(base: ExperimentConfig, dataset: str) -> ExperimentConfig:
    cfg = base.with_(dataset=dataset)
    if dataset in HEAVY and cfg.window_size > 3_000:
        cfg = cfg.with_(window_size=3_000)
    return cfg


def emit(title: str, body: str) -> None:
    print(f"\n### {title}\n")
    print("```")
    print(body)
    print("```")
    sys.stdout.flush()


def fig7(base: ExperimentConfig, quick: bool) -> None:
    windows = (1_000, 2_000, 4_000) if quick else FIG7_WINDOWS
    # the heavy skewed workloads sweep a proportionally smaller grid so
    # G2 stays tractable in pure Python (same 1:2.5:5:7.5:10 structure)
    heavy_windows = tuple(max(500, w // 4) for w in windows)
    for dataset in PAPER_DATASETS:
        cfg = _cfg(base, dataset)
        values = heavy_windows if dataset in HEAVY else windows
        rows = run_sweep(cfg, "window_size", values)
        emit(f"Figure 7 — impact of n [{dataset}] (mean ms)", format_rows(rows))


def fig8(base: ExperimentConfig, quick: bool) -> None:
    rates = (50, 200, 1000) if quick else FIG8_RATES
    for dataset in PAPER_DATASETS:
        rows = run_sweep(_cfg(base, dataset), "batch_size", rates)
        emit(f"Figure 8 — impact of m [{dataset}] (mean ms)", format_rows(rows))


def fig9(base: ExperimentConfig, quick: bool) -> None:
    sides = (100.0, 1000.0, 2000.0) if quick else FIG9_SIDES
    for dataset in PAPER_DATASETS:
        cfg = _cfg(base, dataset)
        if dataset in HEAVY:
            cfg = cfg.with_(window_size=min(cfg.window_size, 2_000))
        rows = run_sweep(cfg, "rect_side", sides)
        emit(f"Figure 9 — impact of l [{dataset}] (mean ms)", format_rows(rows))


def fig10(base: ExperimentConfig, quick: bool) -> None:
    epsilons = (0.0, 0.1, 0.3, 0.5) if quick else FIG10_EPSILONS
    for dataset in PAPER_DATASETS:
        cfg = _cfg(base, dataset)
        rows = run_approx_sweep(cfg, epsilons)
        emit(
            f"Figure 10 — impact of ε [{dataset}] (aG2 mean ms + practical error)",
            format_rows(rows),
        )


def fig11(base: ExperimentConfig, quick: bool) -> None:
    ks = (1, 10, 25, 50) if quick else FIG11_KS
    for dataset in PAPER_DATASETS:
        cfg = _cfg(base, dataset)
        if dataset in HEAVY:
            cfg = cfg.with_(window_size=min(cfg.window_size, 3_000))
        rows = run_topk_sweep(cfg, ks)
        emit(f"Figure 11 — impact of k [{dataset}] (mean ms)", format_rows(rows))


def table5(base: ExperimentConfig, quick: bool) -> None:
    cfg = base.with_(window_size=min(base.window_size, 3_000))
    rows = run_ablation(cfg, PAPER_DATASETS)
    emit(
        "Table 5 — Algorithm 5 ablation (aG2 mean ms per dataset)",
        format_rows(rows),
    )


EXPERIMENTS = {
    "table5": table5,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced grids")
    parser.add_argument(
        "--only", nargs="*", choices=sorted(EXPERIMENTS), default=None,
        help="run a subset of experiments",
    )
    args = parser.parse_args(argv)
    base = QUICK if args.quick else FULL
    chosen = args.only or list(EXPERIMENTS)
    print(f"## Measured results ({'quick' if args.quick else 'full'} grids)")
    started = time.time()
    for name in chosen:
        t0 = time.time()
        EXPERIMENTS[name](base, args.quick)
        print(f"\n_{name} completed in {time.time() - t0:.0f}s_")
    print(f"\n_total {time.time() - started:.0f}s_")
    return 0


if __name__ == "__main__":
    sys.exit(main())
