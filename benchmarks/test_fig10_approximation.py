"""Figure 10 — approximate monitoring: time and practical error vs ε.

Paper shape: update time decreases as ε grows; the measured error is
always ≤ ε (Theorem 1) and in practice far smaller.  The error half of
the figure is asserted here directly (an exact companion monitor sees
the same batches); the timing half is the benchmark.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig, run_approx_sweep

EPSILONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

CFG = ExperimentConfig(
    dataset="geolife_like",
    window_size=3_000,
    batch_size=100,
    rect_side=1000.0,
    domain=140_000.0,
    seed=42,
)


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fig10_update_time(benchmark, epsilon):
    benchmark.group = "fig10 epsilon sweep [geolife_like]"
    benchmark.extra_info.update(
        {"figure": "10", "dataset": CFG.dataset, "epsilon": epsilon}
    )
    monitor, batches = steady_state(CFG.with_(epsilon=epsilon), "ag2")
    measure_updates(benchmark, monitor, batches)


def test_fig10_error_rates(benchmark):
    """The figure's lower row: practical error per ε, asserted ≤ ε."""
    cfg = CFG.with_(window_size=1_500, batches=4)

    def sweep():
        return run_approx_sweep(cfg, EPSILONS)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["mean_error"] <= row["epsilon"] + 1e-9
        assert row["max_error"] <= row["epsilon"] + 1e-9
    benchmark.extra_info["rows"] = [
        {k: (round(v, 5) if isinstance(v, float) else v) for k, v in row.items()}
        for row in rows
    ]
