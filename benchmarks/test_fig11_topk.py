"""Figure 11 — continuous top-k MaxRS: update time vs ``k``.

Paper shape: naive is flat in ``k`` (one sweep covers any k); aG2's
cost grows only slightly with ``k`` and stays well below naive.
"""

from __future__ import annotations

import pytest

from conftest import measure_updates, steady_state
from repro.bench import ExperimentConfig

KS = (1, 10, 20, 30, 40, 50)
ALGORITHMS = ("naive", "ag2")

CFG = ExperimentConfig(
    dataset="synthetic",
    window_size=4_000,
    batch_size=100,
    rect_side=1000.0,
    domain=140_000.0,
    seed=42,
)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11_update_time(benchmark, k, algorithm):
    benchmark.group = f"fig11 k={k} [synthetic]"
    benchmark.extra_info.update(
        {"figure": "11", "dataset": CFG.dataset, "k": k, "algorithm": algorithm}
    )
    monitor, batches = steady_state(CFG.with_(k=k), algorithm)
    measure_updates(benchmark, monitor, batches)
